(* Tests for the approximate community detectors and their quality
   harness: modularity-greedy validity/determinism/modularity floor, the
   masked CSR entry point against the digraph entry point, the adaptive
   sampled Girvan-Newman engine at tight tolerances (where the Hoeffding
   stop rule must fall back to the exact engine, bitwise), the Quality
   report on hand-checked graphs, and a located-bugs regression across
   all three detectors on the tiny fault campaign. *)

open Rca_graph

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

(* --- quality harness on a hand-checked graph --------------------------------- *)

(* Two triangles joined by one bridge edge: the classic 2-community
   graph.  Symmetrized: 14 arcs, each triangle has 6 internal arcs,
   volume 7, and 1 cut arc; Q = 2 * (6/14 - (7/14)^2) = 5/14. *)
let two_triangles () =
  Digraph.of_edges ~n:6 [ (0, 1); (1, 2); (2, 0); (3, 4); (4, 5); (5, 3); (2, 3) ]

let quality_two_triangles () =
  let g = two_triangles () in
  let labels = [| 0; 0; 0; 1; 1; 1 |] in
  let r = Quality.of_partition g (Community.partition_of_labels labels 2) in
  check_int "nodes" 6 r.Quality.q_nodes;
  check_int "symmetrized arcs" 14 r.Quality.q_arcs;
  check_int "communities" 2 r.Quality.q_communities;
  check_float "modularity" (5.0 /. 14.0) r.Quality.q_modularity;
  check_float "coverage" (12.0 /. 14.0) r.Quality.q_coverage;
  check_float "mean conductance" (1.0 /. 7.0) r.Quality.q_mean_conductance;
  check_float "max conductance" (1.0 /. 7.0) r.Quality.q_max_conductance;
  check_float "min intra ratio" (6.0 /. 7.0) r.Quality.q_min_intra_ratio;
  List.iter
    (fun cq ->
      check_int "size" 3 cq.Quality.cq_size;
      check_int "internal" 6 cq.Quality.cq_internal_arcs;
      check_int "cut" 1 cq.Quality.cq_cut_arcs)
    r.Quality.q_per_community

let quality_uncovered_nodes_are_singletons () =
  let g = two_triangles () in
  let r = Quality.of_communities g [ [ 0; 1; 2 ] ] in
  check_int "one listed + three singletons" 4 r.Quality.q_communities;
  check_float "coverage counts only the triangle" (6.0 /. 14.0) r.Quality.q_coverage

let quality_degenerate_graphs () =
  let empty = Quality.of_partition (Digraph.create ()) (Community.partition_of_labels [||] 0) in
  check_int "empty nodes" 0 empty.Quality.q_nodes;
  check_float "empty coverage" 1.0 empty.Quality.q_coverage;
  check_float "empty conductance" 0.0 empty.Quality.q_max_conductance;
  let edgeless =
    Quality.of_partition (Digraph.of_edges ~n:4 []) (Community.partition_of_labels [| 0; 0; 1; 1 |] 2)
  in
  check_int "edgeless arcs" 0 edgeless.Quality.q_arcs;
  check_float "edgeless coverage" 1.0 edgeless.Quality.q_coverage;
  check_float "edgeless modularity" 0.0 edgeless.Quality.q_modularity

let quality_summary_json_shape () =
  let g = two_triangles () in
  let r = Quality.of_communities g [ [ 0; 1; 2 ]; [ 3; 4; 5 ] ] in
  let s = Quality.summary_json r in
  check_bool "single line" true (not (String.contains s '\n'));
  let contains needle =
    let nl = String.length needle and sl = String.length s in
    let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle -> check_bool (needle ^ " present") true (contains needle))
    [ {|"nodes": 6|}; {|"arcs": 14|}; {|"communities": 2|}; {|"modularity": 0.357143|} ]

(* --- greedy detector on known structure --------------------------------------- *)

let greedy_splits_two_triangles () =
  let g = two_triangles () in
  let p = Community.modularity_greedy g in
  check_int "two communities" 2 (Community.community_count p);
  let sorted = List.map (List.sort compare) p.Community.communities |> List.sort compare in
  check_bool "exactly the triangles" true (sorted = [ [ 0; 1; 2 ]; [ 3; 4; 5 ] ])

let greedy_two_clusters_beats_trivial () =
  let g = Gen.two_clusters ~seed:11 ~size:12 ~p_intra:0.6 ~bridges:2 in
  let p = Community.modularity_greedy g in
  let q = (Quality.of_partition g p).Quality.q_modularity in
  check_bool "positive modularity on a planted 2-cluster graph" true (q > 0.2)

(* --- generators ----------------------------------------------------------------- *)

(* Same shape as test_csr_gn's: disjoint G(n,m) blobs plus self-loops,
   covering multi-component, edgeless, and self-loop-only graphs. *)
let graph_gen =
  QCheck2.Gen.(
    let* blobs = list_size (int_range 1 3) (pair (int_range 2 14) (int_range 0 28)) in
    let* seed = int_range 0 1_000_000 in
    let* loops = list_size (int_range 0 3) (int_range 0 10_000) in
    return
      (let g = Digraph.create () in
       let off = ref 0 in
       List.iteri
         (fun i (bn, bm) ->
           let b = Gen.gnm ~seed:(seed + (31 * i)) ~n:bn ~m:bm in
           Digraph.ensure_node g (!off + bn - 1);
           Digraph.iter_edges (fun u v -> Digraph.add_edge g (!off + u) (!off + v)) b;
           off := !off + bn)
         blobs;
       let n = Digraph.n g in
       List.iter (fun l -> Digraph.add_edge g (l mod n) (l mod n)) loops;
       g))

let masked_gen = QCheck2.Gen.(pair graph_gen (int_range 0 1_000_000))

let alive_subset g seed =
  let st = Random.State.make [| seed |] in
  List.filter (fun _ -> Random.State.bool st) (List.init (Digraph.n g) Fun.id)

let normalize comms =
  List.map (List.sort compare) comms |> List.sort compare

(* --- greedy: validity, determinism, floor ---------------------------------------- *)

let prop_greedy_valid_partition =
  QCheck2.Test.make ~name:"greedy partition is a valid total partition" ~count:60
    graph_gen (fun g ->
      let n = Digraph.n g in
      let p = Community.modularity_greedy g in
      let k = Community.community_count p in
      Array.length p.Community.labels = n
      && List.length p.Community.communities = k
      (* every node appears exactly once, and where its label says *)
      && List.sort compare (List.concat p.Community.communities) = List.init n Fun.id
      && List.for_all2
           (fun c members -> List.for_all (fun v -> p.Community.labels.(v) = c) members)
           (List.init k Fun.id) p.Community.communities
      (* sizes are non-increasing (0 = largest) *)
      && fst
           (List.fold_left
              (fun (ok, prev) comm ->
                let s = List.length comm in
                (ok && s <= prev, s))
              (true, max_int) p.Community.communities))

let prop_greedy_deterministic =
  QCheck2.Test.make ~name:"greedy is a pure function of the graph" ~count:40 graph_gen
    (fun g ->
      let a = Community.modularity_greedy g in
      let b = Community.modularity_greedy g in
      a.Community.labels = b.Community.labels
      && a.Community.communities = b.Community.communities)

let prop_greedy_modularity_floor =
  QCheck2.Test.make ~name:"greedy modularity >= all-singleton modularity" ~count:40
    graph_gen (fun g ->
      let n = Digraph.n g in
      let p = Community.modularity_greedy g in
      let singletons = Community.partition_of_labels (Array.init n Fun.id) n in
      (Quality.of_partition g p).Quality.q_modularity
      >= (Quality.of_partition g singletons).Quality.q_modularity -. 1e-9)

let prop_greedy_masked_equals_induced =
  QCheck2.Test.make ~name:"masked greedy = greedy on the induced subgraph" ~count:40
    masked_gen (fun (g, seed) ->
      let alive_nodes = alive_subset g seed in
      let csr = Csr.of_digraph g in
      let rev = Csr.transpose csr in
      let alive = Csr.mask_of_list csr alive_nodes in
      let masked = Community.modularity_greedy_masked csr rev ~alive in
      let sub = Digraph.induced_subgraph g alive_nodes in
      let reference =
        (Community.modularity_greedy sub.Digraph.graph).Community.communities
        |> List.map (List.map (Digraph.sub_to_parent sub))
      in
      normalize masked = normalize reference
      (* and the full mask reproduces the digraph entry point *)
      && normalize (Community.modularity_greedy_masked csr rev ~alive:(Csr.full_mask csr))
         = normalize (Community.modularity_greedy g).Community.communities)

(* --- adaptive sampled G-N: tight tolerances force the exact path ----------------- *)

(* With delta this small the Hoeffding error bound cannot certify an
   argmax before the sample count doubles up to the full source set, at
   which point the engine discards the samples and recomputes exactly —
   so every removal decision must be bitwise identical to the exact
   engine's. *)
let tight =
  {
    Community.ad_epsilon = 1e-6;
    ad_delta = 1e-9;
    ad_seed = 7;
    ad_min_samples = 4;
  }

let same_step (a : Community.gn_step) (b : Community.gn_step) =
  a.Community.removed_edges = b.Community.removed_edges
  && a.Community.partition.Community.labels = b.Community.partition.Community.labels
  && a.Community.partition.Community.communities
     = b.Community.partition.Community.communities

let prop_adaptive_tight_equals_exact_step =
  QCheck2.Test.make ~name:"adaptive G-N step @ tight epsilon = exact (bitwise)" ~count:35
    graph_gen (fun g ->
      same_step (Community.girvan_newman_step ~adaptive:tight g)
        (Community.girvan_newman_step g))

let prop_adaptive_tight_equals_exact_target =
  QCheck2.Test.make ~name:"adaptive G-N target:3 @ tight epsilon = exact (bitwise)"
    ~count:25 graph_gen (fun g ->
      same_step
        (Community.girvan_newman ~adaptive:tight ~target:3 g)
        (Community.girvan_newman ~target:3 g))

let adaptive_default_edge_cases () =
  let check g =
    (* default tolerances on tiny graphs: components are below the
       min-sample floor, so the sampled path is never even entered *)
    check_bool "matches exact" true
      (same_step
         (Community.girvan_newman_step ~adaptive:Community.default_adaptive g)
         (Community.girvan_newman_step g))
  in
  check (Digraph.create ());
  check (Digraph.of_edges ~n:5 []);
  check (Digraph.of_edges ~n:3 [ (0, 0); (2, 2) ]);
  check (Digraph.of_edges ~n:2 [ (0, 1) ])

(* --- adaptive quality on a planted partition ------------------------------------- *)

let adaptive_default_quality_on_clusters () =
  (* big enough that the sampled path genuinely engages; the result need
     not match the exact engine bitwise, but it must find a split of
     comparable quality *)
  let g = Gen.two_clusters ~seed:5 ~size:40 ~p_intra:0.3 ~bridges:2 in
  let exact = Community.girvan_newman_step g in
  let sampled = Community.girvan_newman_step ~adaptive:Community.default_adaptive g in
  let q p = (Quality.of_partition g p).Quality.q_modularity in
  check_bool "split happened" true
    (Community.community_count sampled.Community.partition >= 2);
  check_bool "within 0.1 modularity of exact" true
    (q sampled.Community.partition >= q exact.Community.partition -. 0.1)

(* --- pool sizing ------------------------------------------------------------------ *)

let recommended_size_clamps () =
  let cores = Domain.recommended_domain_count () in
  check_int "requested 1" 1 (Pool.recommended_size ~requested:1);
  check_int "requested 0 floors at 1" 1 (Pool.recommended_size ~requested:0);
  check_int "large request clamps to cores" cores (Pool.recommended_size ~requested:1024);
  check_bool "never exceeds cores" true (Pool.recommended_size ~requested:4 <= cores)

(* --- campaign located-bugs regression across detectors ---------------------------- *)

let mini_params partitioner =
  let p = Rca_faults.Campaign.default_params Rca_synth.Config.tiny in
  {
    p with
    Rca_faults.Campaign.corpus =
      {
        p.Rca_faults.Campaign.corpus with
        Rca_faults.Corpus.families = [ Rca_faults.Fault.Prng; Rca_faults.Fault.Intent_guard ];
        Rca_faults.Corpus.max_per_family = 2;
      };
    Rca_faults.Campaign.partitioner;
  }

let located_list (t : Rca_faults.Campaign.t) =
  List.map
    (fun r ->
      ( r.Rca_faults.Campaign.fault.Rca_faults.Fault.id,
        match r.Rca_faults.Campaign.outcome with
        | Rca_faults.Campaign.Scored s -> Some s.Rca_faults.Campaign.s_located
        | Rca_faults.Campaign.Undetected -> None
        | Rca_faults.Campaign.Crashed _ -> None ))
    t.Rca_faults.Campaign.results

let campaign_located_bugs_detector_invariant () =
  let open Rca_core.Refine in
  let exact = Rca_faults.Campaign.run (mini_params Girvan_newman) in
  check_bool "non-empty corpus" true (exact.Rca_faults.Campaign.results <> []);
  check_int "no crashes" 0 exact.Rca_faults.Campaign.overall.Rca_faults.Campaign.fs_crashed;
  let reference = located_list exact in
  List.iter
    (fun (name, partitioner) ->
      let t = Rca_faults.Campaign.run (mini_params partitioner) in
      check_int (name ^ ": no crashes") 0
        t.Rca_faults.Campaign.overall.Rca_faults.Campaign.fs_crashed;
      check_bool (name ^ ": located_bugs identical to exact G-N") true
        (located_list t = reference))
    [ ("gn-adaptive", Gn_adaptive); ("greedy", Modularity_greedy) ]

let campaign_quality_reports_present () =
  let t = Rca_faults.Campaign.run (mini_params Rca_core.Refine.Modularity_greedy) in
  let qualities =
    List.filter_map
      (fun r ->
        match r.Rca_faults.Campaign.outcome with
        | Rca_faults.Campaign.Scored s -> s.Rca_faults.Campaign.s_quality
        | _ -> None)
      t.Rca_faults.Campaign.results
  in
  check_bool "at least one scored fault has a quality report" true (qualities <> []);
  List.iter
    (fun q ->
      check_bool "coverage in [0,1]" true
        (q.Quality.q_coverage >= 0.0 && q.Quality.q_coverage <= 1.0);
      check_bool "modularity in [-1,1]" true
        (q.Quality.q_modularity >= -1.0 && q.Quality.q_modularity <= 1.0);
      check_bool "communities positive" true (q.Quality.q_communities > 0))
    qualities

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_greedy_valid_partition;
      prop_greedy_deterministic;
      prop_greedy_modularity_floor;
      prop_greedy_masked_equals_induced;
      prop_adaptive_tight_equals_exact_step;
      prop_adaptive_tight_equals_exact_target;
    ]

let () =
  Alcotest.run "rca_quality"
    [
      ( "harness",
        [
          Alcotest.test_case "two triangles" `Quick quality_two_triangles;
          Alcotest.test_case "uncovered = singletons" `Quick quality_uncovered_nodes_are_singletons;
          Alcotest.test_case "degenerate graphs" `Quick quality_degenerate_graphs;
          Alcotest.test_case "summary json" `Quick quality_summary_json_shape;
        ] );
      ( "greedy",
        [
          Alcotest.test_case "splits two triangles" `Quick greedy_splits_two_triangles;
          Alcotest.test_case "planted clusters" `Quick greedy_two_clusters_beats_trivial;
        ] );
      ( "adaptive",
        [
          Alcotest.test_case "edge cases = exact" `Quick adaptive_default_edge_cases;
          Alcotest.test_case "planted-cluster quality" `Quick adaptive_default_quality_on_clusters;
        ] );
      ("pool", [ Alcotest.test_case "recommended_size clamps" `Quick recommended_size_clamps ]);
      ( "campaign",
        [
          Alcotest.test_case "located bugs detector-invariant" `Slow
            campaign_located_bugs_detector_invariant;
          Alcotest.test_case "quality reports present" `Slow campaign_quality_reports_present;
        ] );
      ("properties", qcheck_cases);
    ]
