(* Tests for rca_analysis: CFG construction, reaching-definitions and
   liveness fixed points, the diagnostics engine (each kind seeded and
   clean), conservative havoc for Unparsed statements, the differential
   metagraph oracle, and observational safety of static pruning. *)

open Rca_fortran
module A = Rca_analysis.Analysis
module Cfg = Rca_analysis.Cfg
module Dataflow = Rca_analysis.Dataflow
module Defuse = Rca_analysis.Defuse
module D = Rca_analysis.Diagnostics
module Oracle = Rca_analysis.Oracle
module MG = Rca_metagraph.Metagraph

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let parse src = Parser.parse_file ~strict:false ~file:"t.F90" src

let analyze src = A.analyze (parse src)

let diags src = (analyze src).A.diags

let of_kind k ds = List.filter (fun d -> d.D.kind = k) ds

let flow_of src ~sub =
  match A.find_sub (analyze src) ~module_:"m" ~sub with
  | Some sa -> sa.A.sa_flow
  | None -> Alcotest.failf "subprogram %s not analyzed" sub

let cfg_of src ~sub =
  match A.find_sub (analyze src) ~module_:"m" ~sub with
  | Some sa -> sa.A.sa_cfg
  | None -> Alcotest.failf "subprogram %s not analyzed" sub

let block_with (cfg : Cfg.t) pred =
  let found = ref None in
  Array.iteri
    (fun i instrs -> if Array.exists pred instrs && !found = None then found := Some i)
    cfg.Cfg.blocks;
  match !found with Some i -> i | None -> Alcotest.fail "no block matches"

(* --- CFG shape ---------------------------------------------------------------- *)

let cfg_straight_line () =
  let cfg =
    cfg_of ~sub:"s"
      "module m\ncontains\nsubroutine s()\nreal(r8) :: a, b\na = 1.0\nb = a\na = b\nend subroutine\nend module m"
  in
  check_int "three instructions" 3 (Cfg.n_instrs cfg);
  Alcotest.(check (list int)) "nothing unreachable" [] (Cfg.unreachable_lines cfg)

let cfg_if_else_branches () =
  let cfg =
    cfg_of ~sub:"s"
      "module m\nreal(r8) :: x, y\ncontains\nsubroutine s()\nif (x > 0.0) then\ny = 1.0\nelse\ny = 2.0\nend if\nx = y\nend subroutine\nend module m"
  in
  (* Cond + two branch assigns + join assign *)
  check_int "instructions" 4 (Cfg.n_instrs cfg);
  let cond = block_with cfg (function Cfg.Cond _ -> true | _ -> false) in
  check_int "condition block forks" 2 (List.length cfg.Cfg.succ.(cond));
  Alcotest.(check (list int)) "nothing unreachable" [] (Cfg.unreachable_lines cfg)

let cfg_do_loop_edges () =
  let cfg =
    cfg_of ~sub:"s"
      "module m\nreal(r8) :: acc\ncontains\nsubroutine s()\ninteger :: i\ndo i = 1, 10\nacc = acc + 1.0\nend do\nacc = acc * 2.0\nend subroutine\nend module m"
  in
  let head = block_with cfg (function Cfg.Do_header _ -> true | _ -> false) in
  (* zero-trip: the header reaches both the body and the code after *)
  check_int "header forks" 2 (List.length cfg.Cfg.succ.(head));
  check_bool "header has a back edge" true (List.length cfg.Cfg.pred.(head) >= 2);
  Alcotest.(check (list int)) "all reachable" [] (Cfg.unreachable_lines cfg)

let cfg_early_return_unreachable () =
  let cfg =
    cfg_of ~sub:"s"
      "module m\ncontains\nsubroutine s()\nreal(r8) :: x\nx = 1.0\nreturn\nx = 2.0\nend subroutine\nend module m"
  in
  Alcotest.(check (list int)) "statement after return" [ 7 ] (Cfg.unreachable_lines cfg)

let cfg_exit_unreachable_tail () =
  let cfg =
    cfg_of ~sub:"s"
      "module m\nreal(r8) :: a, b\ncontains\nsubroutine s()\ninteger :: i\ndo i = 1, 5\nexit\na = 1.0\nend do\nb = 2.0\nend subroutine\nend module m"
  in
  (* a = 1.0 (line 8) is dead; b = 2.0 (line 10) is reached via the exit *)
  Alcotest.(check (list int)) "only the post-exit body line" [ 8 ]
    (Cfg.unreachable_lines cfg)

(* --- dataflow fixed points ------------------------------------------------------ *)

let du_chain_on_kernel () =
  let flow =
    flow_of ~sub:"s"
      "module m\ncontains\nsubroutine s(x, y)\nreal(r8), intent(in) :: x\nreal(r8), intent(out) :: y\nreal(r8) :: t\nt = x + 1.0\ny = t * 2.0\nend subroutine\nend module m"
  in
  let chains = Dataflow.du_chains flow in
  check_bool "def t@7 reaches use t@8" true
    (List.exists
       (fun { Dataflow.du_def; du_use } ->
         du_def.Defuse.d_var.Rca_analysis.Scope.v_name = "t"
         && du_def.Defuse.d_line = 7 && du_use.Defuse.u_line = 8)
       chains)

let liveness_at_exit_is_escape_set () =
  let flow =
    flow_of ~sub:"s"
      "module m\ncontains\nsubroutine s(x, y)\nreal(r8), intent(in) :: x\nreal(r8), intent(out) :: y\nreal(r8) :: t\nt = x + 1.0\ny = t * 2.0\nend subroutine\nend module m"
  in
  let live = Dataflow.live_out_names flow flow.Dataflow.cfg.Cfg.exit_ in
  check_bool "intent(out) live at exit" true (List.mem "y" live);
  check_bool "local dead at exit" false (List.mem "t" live)

let loop_carried_value_not_dead () =
  let ds =
    diags
      "module m\ncontains\nsubroutine s(y)\nreal(r8), intent(out) :: y\nreal(r8) :: acc\ninteger :: i\nacc = 0.0\ndo i = 1, 4\nacc = acc + 1.0\nend do\ny = acc\nend subroutine\nend module m"
  in
  check_int "no findings on the accumulation kernel" 0 (List.length ds)

(* --- diagnostics: each kind seeded + clean -------------------------------------- *)

let use_before_def_definite () =
  let ds =
    diags
      "module m\ncontains\nsubroutine s(y)\nreal(r8), intent(out) :: y\nreal(r8) :: t\ny = t\nend subroutine\nend module m"
  in
  match of_kind D.Use_before_def ds with
  | [ d ] ->
      check_bool "error severity" true (d.D.severity = D.Error);
      check_int "line" 6 d.D.line;
      Alcotest.(check string) "variable" "t" d.D.var
  | _ -> Alcotest.fail "expected exactly one use-before-def"

let use_before_def_clean () =
  let ds =
    diags
      "module m\ncontains\nsubroutine s(y)\nreal(r8), intent(out) :: y\nreal(r8) :: t\nt = 1.0\ny = t\nend subroutine\nend module m"
  in
  check_int "no uninit findings" 0
    (List.length (of_kind D.Use_before_def ds) + List.length (of_kind D.Use_maybe_uninit ds))

let maybe_uninit_on_one_branch () =
  let ds =
    diags
      "module m\ncontains\nsubroutine s(x, y)\nreal(r8), intent(in) :: x\nreal(r8), intent(out) :: y\nreal(r8) :: t\nif (x > 0.0) then\nt = 1.0\nend if\ny = t\nend subroutine\nend module m"
  in
  (match of_kind D.Use_maybe_uninit ds with
  | [ d ] ->
      check_bool "warning severity" true (d.D.severity = D.Warning);
      check_int "line" 10 d.D.line
  | _ -> Alcotest.fail "expected exactly one maybe-uninit");
  check_int "not a definite error" 0 (List.length (of_kind D.Use_before_def ds))

let maybe_uninit_clean_when_both_branches_assign () =
  let ds =
    diags
      "module m\ncontains\nsubroutine s(x, y)\nreal(r8), intent(in) :: x\nreal(r8), intent(out) :: y\nreal(r8) :: t\nif (x > 0.0) then\nt = 1.0\nelse\nt = 2.0\nend if\ny = t\nend subroutine\nend module m"
  in
  check_int "no uninit findings" 0
    (List.length (of_kind D.Use_before_def ds) + List.length (of_kind D.Use_maybe_uninit ds))

let dead_assignment_detected () =
  let ds =
    diags
      "module m\ncontains\nsubroutine s(y)\nreal(r8), intent(out) :: y\nreal(r8) :: t\nt = 1.0\nt = 2.0\ny = t\nend subroutine\nend module m"
  in
  match of_kind D.Dead_assignment ds with
  | [ d ] ->
      check_int "overwritten store" 6 d.D.line;
      Alcotest.(check string) "variable" "t" d.D.var
  | _ -> Alcotest.fail "expected exactly one dead assignment"

let unused_and_shadowed () =
  let ds =
    diags
      "module m\nreal(r8) :: w\ncontains\nsubroutine s(y)\nreal(r8), intent(out) :: y\nreal(r8) :: w\nreal(r8) :: unused_v\nw = 1.0\ny = w\nend subroutine\nend module m"
  in
  (match of_kind D.Unused_variable ds with
  | [ d ] -> Alcotest.(check string) "unused variable" "unused_v" d.D.var
  | _ -> Alcotest.fail "expected exactly one unused variable");
  match of_kind D.Shadowed_variable ds with
  | [ d ] ->
      Alcotest.(check string) "shadowing local" "w" d.D.var;
      check_bool "info severity" true (d.D.severity = D.Info)
  | _ -> Alcotest.fail "expected exactly one shadowed variable"

let write_to_intent_in () =
  let ds =
    diags
      "module m\nreal(r8) :: g\ncontains\nsubroutine s(x)\nreal(r8), intent(in) :: x\nx = 3.0\ng = x\nend subroutine\nend module m"
  in
  match of_kind D.Write_to_intent_in ds with
  | [ d ] ->
      check_bool "error severity" true (d.D.severity = D.Error);
      check_int "line" 6 d.D.line
  | _ -> Alcotest.fail "expected exactly one intent(in) write"

let intent_out_never_set () =
  let seeded =
    diags
      "module m\nreal(r8) :: g\ncontains\nsubroutine s(y)\nreal(r8), intent(out) :: y\ng = 1.0\nend subroutine\nend module m"
  in
  (match of_kind D.Intent_out_never_set seeded with
  | [ d ] -> Alcotest.(check string) "variable" "y" d.D.var
  | _ -> Alcotest.fail "expected exactly one intent(out) finding");
  let clean =
    diags
      "module m\ncontains\nsubroutine s(y)\nreal(r8), intent(out) :: y\ny = 1.0\nend subroutine\nend module m"
  in
  check_int "assigned intent(out) is fine" 0
    (List.length (of_kind D.Intent_out_never_set clean))

let unreachable_reported () =
  let ds =
    diags
      "module m\ncontains\nsubroutine s()\nreal(r8) :: x\nx = 1.0\nreturn\nx = 2.0\nend subroutine\nend module m"
  in
  match of_kind D.Unreachable_code ds with
  | [ d ] -> check_int "line" 7 d.D.line
  | _ -> Alcotest.fail "expected exactly one unreachable finding"

(* --- interprocedural summaries --------------------------------------------------- *)

let call_site_defines_actual () =
  (* `call setval(a)` must count as a definition of `a`: no use-before-def
     on the later read.  Both via declared intent(out) and via the
     read/write summary of an intent-free callee. *)
  let ds =
    diags
      "module m\ncontains\nsubroutine setval(v)\nreal(r8), intent(out) :: v\nv = 3.0\nend subroutine\nsubroutine noint(v)\nreal(r8) :: v\nv = 4.0\nend subroutine\nsubroutine use_it(r, q)\nreal(r8), intent(out) :: r, q\nreal(r8) :: a, b\ncall setval(a)\ncall noint(b)\nr = a\nq = b\nend subroutine\nend module m"
  in
  check_int "no uninit findings" 0
    (List.length (of_kind D.Use_before_def ds) + List.length (of_kind D.Use_maybe_uninit ds))

let missing_call_makes_use_before_def () =
  let ds =
    diags
      "module m\ncontains\nsubroutine setval(v)\nreal(r8), intent(out) :: v\nv = 3.0\nend subroutine\nsubroutine use_it(r)\nreal(r8), intent(out) :: r\nreal(r8) :: a\nr = a\nend subroutine\nend module m"
  in
  check_int "definite use-before-def" 1 (List.length (of_kind D.Use_before_def ds))

(* --- Unparsed statements are conservative havoc ---------------------------------- *)

let unparsed_is_conservative () =
  (* `where` defeats the parser.  The havoc model must (a) not report its
     reads as use-before-def and (b) keep earlier stores alive. *)
  let ds =
    diags
      "module m\ncontains\nsubroutine s()\nreal(r8) :: q(4), qt(4)\nqt = 0.0\nwhere (q > 0.0) qt = qt + q * 0.5\nend subroutine\nend module m"
  in
  check_int "no findings at all" 0 (List.length ds)

(* --- differential oracle ---------------------------------------------------------- *)

let oracle_green_on_synth_model () =
  let fixture = Rca_experiments.Fixture.make Rca_synth.Config.tiny in
  let an = A.analyze fixture.Rca_experiments.Fixture.covered_program in
  let rep = A.check_oracle an fixture.Rca_experiments.Fixture.mg in
  check_bool "no mismatches, no orphans" true (Oracle.ok rep);
  check_bool "pairs derived" true (rep.Oracle.rp_pairs > 0);
  check_int "every edge explained" rep.Oracle.rp_edges rep.Oracle.rp_pairs

let analyze_scope prog = (A.analyze prog).A.program_scope

let oracle_mismatch_has_provenance () =
  let prog = parse "module m\nreal(r8) :: x, y\ncontains\nsubroutine s()\ny = x\nend subroutine\nend module m" in
  let mg = MG.build prog in
  let x =
    match MG.find_node mg ~module_:"m" ~sub:"" ~name:"x" with
    | Some id -> id
    | None -> Alcotest.fail "x node missing"
  in
  (* dropping x's edges leaves the static pair x -> y unexplained *)
  let pruned = Rca_metagraph.Prune.without_nodes mg ~dead:[ x ] in
  let rep = Oracle.check (analyze_scope prog) pruned in
  match rep.Oracle.rp_mismatches with
  | [ m ] ->
      Alcotest.(check string) "file" "t.F90" m.Oracle.mis_pair.Oracle.p_file;
      check_int "line" 5 m.Oracle.mis_pair.Oracle.p_line
  | ms -> Alcotest.failf "expected one mismatch, got %d" (List.length ms)

(* --- static pruning --------------------------------------------------------------- *)

let dead_var_detection_is_precise () =
  let an =
    analyze
      "module m\nreal(r8) :: out_v\ncontains\nsubroutine s()\nreal(r8) :: deadl, livel\ndeadl = 1.0\nlivel = 2.0\nout_v = livel\nend subroutine\nend module m"
  in
  Alcotest.(check (list (triple string string string)))
    "only the never-read local" [ ("m", "s", "deadl") ] (A.dead_var_keys an)

let static_prune_observationally_safe () =
  (* Acceptance criterion: the GOFFGRATCH pipeline outcome is identical
     with and without static dead-node pruning. *)
  let open Rca_experiments in
  let params =
    {
      (Harness.default_params Rca_synth.Config.tiny) with
      Harness.ensemble_members = 15;
      experimental_members = 6;
    }
  in
  let base = Harness.run ~validate_sampling:false Experiments.goffgratch params in
  let pruned =
    Harness.run ~validate_sampling:false Experiments.goffgratch
      { params with Harness.static_prune = true }
  in
  check_int "slice nodes" base.Harness.slice_nodes pruned.Harness.slice_nodes;
  check_int "slice edges" base.Harness.slice_edges pruned.Harness.slice_edges;
  check_int "refine iterations" (Harness.iteration_count base) (Harness.iteration_count pruned);
  Alcotest.(check (list int)) "final candidate set"
    (List.sort compare base.Harness.pipeline.Rca_core.Pipeline.result.Rca_core.Refine.final_nodes)
    (List.sort compare pruned.Harness.pipeline.Rca_core.Pipeline.result.Rca_core.Refine.final_nodes);
  check_bool "bugs located" base.Harness.bugs_located pruned.Harness.bugs_located;
  check_bool "analysis attached when pruning" true (pruned.Harness.analysis <> None)

(* --- report ------------------------------------------------------------------------ *)

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let json_report_is_stable () =
  let an =
    analyze
      "module m\ncontains\nsubroutine s(y)\nreal(r8), intent(out) :: y\nreal(r8) :: t\ny = t\nend subroutine\nend module m"
  in
  let json = A.report_json an in
  check_bool "has version" true (contains_substring json "\"version\": 2");
  check_bool "has the finding" true (contains_substring json "\"use-before-def\"");
  check_bool "has symbol field" true (contains_substring json "\"symbol\":");
  check_bool "has def provenance" true (contains_substring json "\"def_file\":")

(* --- resolver: adversarial scoping ------------------------------------------------ *)

module R = Rca_analysis.Resolve

let analyze_strict src = A.analyze ~strict_types:true (parse src)

let resolution src = (analyze src).A.resolution

let resolver_dummy_arg_shadows_module_var () =
  let res =
    resolution
      "module m\nreal(r8) :: x\ncontains\nsubroutine s(x)\nreal(r8), intent(in) :: x\nend subroutine\nend module m"
  in
  let formal =
    match R.lookup_var res ~module_:"m" ~sub:"s" "x" with
    | Some s -> s
    | None -> Alcotest.fail "dummy arg did not resolve"
  in
  let modvar =
    match R.module_var res ~module_:"m" "x" with
    | Some s -> s
    | None -> Alcotest.fail "module var did not resolve"
  in
  check_bool "inside the sub, x is the formal" true
    (match formal.R.sym_kind with R.Sformal (Some Ast.In) -> true | _ -> false);
  check_bool "module scope still holds its own x" true
    (match modvar.R.sym_kind with R.Smodule_var { owner = "m"; _ } -> true | _ -> false);
  check_bool "two distinct symbols" true (formal.R.sym_id <> modvar.R.sym_id);
  check_int "formal def site" 5 formal.R.sym_line;
  check_int "module var def site" 2 modvar.R.sym_line

let resolver_import_redeclared_locally () =
  let src =
    "module a\nreal(r8) :: v\ncontains\nsubroutine nop()\nend subroutine\nend module a\nmodule m\nuse a\ncontains\nsubroutine s(y)\nreal(r8), intent(out) :: y\nreal(r8) :: v\nv = 1.0\ny = v\nend subroutine\nend module m"
  in
  let res = resolution src in
  (* the local declaration wins inside the sub; the import stays visible
     at module scope with its def site in module a *)
  check_bool "local v wins in the sub" true
    (match R.lookup_var res ~module_:"m" ~sub:"s" "v" with
    | Some { R.sym_kind = R.Slocal _; sym_sub = "s"; _ } -> true
    | _ -> false);
  check_bool "import still visible at module scope, owned by a" true
    (match R.module_var res ~module_:"m" "v" with
    | Some { R.sym_kind = R.Smodule_var { owner = "a"; _ }; _ } -> true
    | _ -> false);
  match of_kind D.Shadowed_import (diags src) with
  | [ d ] ->
      Alcotest.(check string) "shadowing local" "v" d.D.var;
      check_bool "info severity" true (d.D.severity = D.Info)
  | ds -> Alcotest.failf "expected one shadowed-import, got %d" (List.length ds)

let resolver_same_named_locals_distinct () =
  let res =
    resolution
      "module m\ncontains\nsubroutine s1()\nreal(r8) :: tmp\ntmp = 1.0\nend subroutine\nsubroutine s2()\ninteger :: tmp\ntmp = 2\nend subroutine\nend module m"
  in
  let t1 =
    match R.lookup_local res ~module_:"m" ~sub:"s1" "tmp" with
    | Some s -> s
    | None -> Alcotest.fail "tmp in s1 missing"
  in
  let t2 =
    match R.lookup_local res ~module_:"m" ~sub:"s2" "tmp" with
    | Some s -> s
    | None -> Alcotest.fail "tmp in s2 missing"
  in
  check_bool "distinct symbols" true (t1.R.sym_id <> t2.R.sym_id);
  Alcotest.(check string) "scoped to s1" "s1" t1.R.sym_sub;
  Alcotest.(check string) "scoped to s2" "s2" t2.R.sym_sub;
  Alcotest.(check (option string)) "s1's tmp is real" (Some "real")
    (Option.map R.ty_str t1.R.sym_ty);
  Alcotest.(check (option string)) "s2's tmp is integer" (Some "integer")
    (Option.map R.ty_str t2.R.sym_ty)

let resolver_undeclared_name_goes_implicit () =
  let src =
    "module m\nreal(r8) :: g\ncontains\nsubroutine s()\ng = undeclared_r + i_count\nend subroutine\nend module m"
  in
  let an = analyze_strict src in
  let res = an.A.resolution in
  (* implicits never count as visible variables... *)
  check_bool "not visible to lookup_var" true
    (R.lookup_var res ~module_:"m" ~sub:"s" "undeclared_r" = None);
  (* ...but the pre-walk interned them with Fortran implicit types *)
  let imps = R.implicits_of_sub res ~module_:"m" ~sub:"s" in
  check_int "two implicit symbols" 2 (List.length imps);
  let ty_of name =
    match List.find_opt (fun s -> s.R.sym_name = name) imps with
    | Some { R.sym_ty = Some t; _ } -> R.ty_str t
    | _ -> Alcotest.failf "implicit %s missing" name
  in
  Alcotest.(check string) "i..n rule" "integer" (ty_of "i_count");
  Alcotest.(check string) "default real" "real" (ty_of "undeclared_r");
  check_int "strict mode warns per implicit" 2
    (List.length (of_kind D.Undeclared_implicit an.A.diags))

let resolver_signature_roundtrip () =
  (* resolved -> pretty-printed -> reparsed -> re-resolved must keep the
     same line-number-free symbol structure *)
  let fixture = Rca_experiments.Fixture.make Rca_synth.Config.tiny in
  let prog = fixture.Rca_experiments.Fixture.clean_program in
  let sig1 = R.signature (R.program prog) in
  let text = Pretty.program_to_string prog in
  let prog2 = Parser.parse_file ~strict:false ~file:"roundtrip.F90" text in
  let sig2 = R.signature (R.program prog2) in
  check_int "symbol population preserved" (List.length sig1) (List.length sig2);
  check_bool "identical structural signature" true (sig1 = sig2)

(* --- strict types: typecheck -------------------------------------------------------- *)

let strict_kind k src = of_kind k (analyze_strict src).A.diags

let typecheck_assignment_mismatch () =
  let src =
    "module m\ncontains\nsubroutine s()\nreal(r8) :: x\nlogical :: flag\nflag = .true.\nx = flag\nend subroutine\nend module m"
  in
  (match strict_kind D.Type_mismatch src with
  | [ d ] ->
      check_bool "error severity" true (d.D.severity = D.Error);
      check_int "line" 7 d.D.line
  | ds -> Alcotest.failf "expected one type-mismatch, got %d" (List.length ds));
  (* without --strict-types the checker does not run at all *)
  check_int "gated behind strict mode" 0 (List.length (of_kind D.Type_mismatch (diags src)))

let typecheck_rank_mismatch () =
  let src =
    "module m\ncontains\nsubroutine s()\nreal(r8) :: a(10)\nreal(r8) :: b(10,10)\nb = 0.0\na = b\nend subroutine\nend module m"
  in
  match strict_kind D.Type_mismatch src with
  | [ d ] -> check_int "rank conflict line" 7 d.D.line
  | ds -> Alcotest.failf "expected one rank mismatch, got %d" (List.length ds)

let typecheck_broadcast_is_clean () =
  (* scalar -> array broadcast, int <-> real conversion, unknown-typed
     intrinsics: all legal, zero strict findings *)
  let src =
    "module m\ncontains\nsubroutine s(y)\nreal(r8), intent(out) :: y\nreal(r8) :: a(10)\ninteger :: i\na = 0.0\ndo i = 1, 10\na(i) = sqrt(real(i))\nend do\ny = a(1) + i\nend subroutine\nend module m"
  in
  let an = analyze_strict src in
  check_int "no strict errors" 0 (List.length (A.errors an))

(* --- strict types: callcheck -------------------------------------------------------- *)

let callcheck_arity_mismatch () =
  let src =
    "module m\ncontains\nsubroutine callee(a, b)\nreal(r8), intent(in) :: a, b\nend subroutine\nsubroutine s()\nreal(r8) :: x\nx = 1.0\ncall callee(x)\nend subroutine\nend module m"
  in
  match strict_kind D.Arity_mismatch src with
  | [ d ] ->
      check_bool "error severity" true (d.D.severity = D.Error);
      check_int "call site" 9 d.D.line;
      (* provenance points at the callee's definition, not the call *)
      check_int "callee def site" 3 d.D.def_line
  | ds -> Alcotest.failf "expected one arity mismatch, got %d" (List.length ds)

let callcheck_argument_type_mismatch () =
  let src =
    "module m\ncontains\nsubroutine callee(flag)\nlogical, intent(in) :: flag\nend subroutine\nsubroutine s()\nreal(r8) :: x\nx = 1.0\ncall callee(x)\nend subroutine\nend module m"
  in
  match strict_kind D.Type_mismatch src with
  | [ d ] -> check_int "call site" 9 d.D.line
  | ds -> Alcotest.failf "expected one argument type mismatch, got %d" (List.length ds)

let callcheck_intent_at_call_site () =
  (* three protected actuals against a written formal: a literal, the
     caller's own intent(in) formal, and a module-level named constant *)
  let src =
    "module m\nreal(r8), parameter :: pc = 2.0_r8\ncontains\nsubroutine callee(a)\nreal(r8), intent(inout) :: a\na = a + 1.0\nend subroutine\nsubroutine s(z)\nreal(r8), intent(in) :: z\ncall callee(1.0)\ncall callee(z)\ncall callee(pc)\nend subroutine\nend module m"
  in
  let hits = strict_kind D.Intent_at_call_site src in
  check_int "all three protected actuals flagged" 3 (List.length hits);
  let has needle =
    List.exists (fun d -> contains_substring d.D.message needle) hits
  in
  check_bool "literal actual" true (has "is not a variable");
  check_bool "caller's intent(in) formal" true (has "intent(in) argument 'z'");
  check_bool "module named constant" true (has "named constant 'pc'")

let callcheck_writable_actual_is_clean () =
  let src =
    "module m\ncontains\nsubroutine callee(a)\nreal(r8), intent(inout) :: a\na = a + 1.0\nend subroutine\nsubroutine s(y)\nreal(r8), intent(out) :: y\nreal(r8) :: t\nt = 0.0\ncall callee(t)\ny = t\nend subroutine\nend module m"
  in
  check_int "no intent findings" 0 (List.length (strict_kind D.Intent_at_call_site src))

let () =
  Alcotest.run "rca_analysis"
    [
      ( "cfg",
        [
          Alcotest.test_case "straight line" `Quick cfg_straight_line;
          Alcotest.test_case "if/else" `Quick cfg_if_else_branches;
          Alcotest.test_case "do loop" `Quick cfg_do_loop_edges;
          Alcotest.test_case "early return" `Quick cfg_early_return_unreachable;
          Alcotest.test_case "exit" `Quick cfg_exit_unreachable_tail;
        ] );
      ( "dataflow",
        [
          Alcotest.test_case "def-use chain" `Quick du_chain_on_kernel;
          Alcotest.test_case "liveness at exit" `Quick liveness_at_exit_is_escape_set;
          Alcotest.test_case "loop-carried" `Quick loop_carried_value_not_dead;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "use-before-def" `Quick use_before_def_definite;
          Alcotest.test_case "use-before-def clean" `Quick use_before_def_clean;
          Alcotest.test_case "maybe-uninit" `Quick maybe_uninit_on_one_branch;
          Alcotest.test_case "maybe-uninit clean" `Quick maybe_uninit_clean_when_both_branches_assign;
          Alcotest.test_case "dead assignment" `Quick dead_assignment_detected;
          Alcotest.test_case "unused + shadowed" `Quick unused_and_shadowed;
          Alcotest.test_case "write to intent(in)" `Quick write_to_intent_in;
          Alcotest.test_case "intent(out) never set" `Quick intent_out_never_set;
          Alcotest.test_case "unreachable" `Quick unreachable_reported;
        ] );
      ( "interprocedural",
        [
          Alcotest.test_case "call defines actual" `Quick call_site_defines_actual;
          Alcotest.test_case "missing call" `Quick missing_call_makes_use_before_def;
        ] );
      ( "havoc",
        [ Alcotest.test_case "unparsed conservative" `Quick unparsed_is_conservative ] );
      ( "oracle",
        [
          Alcotest.test_case "green on synth model" `Quick oracle_green_on_synth_model;
          Alcotest.test_case "mismatch provenance" `Quick oracle_mismatch_has_provenance;
        ] );
      ( "pruning",
        [
          Alcotest.test_case "dead vars precise" `Quick dead_var_detection_is_precise;
          Alcotest.test_case "observational safety" `Quick static_prune_observationally_safe;
        ] );
      ( "report",
        [ Alcotest.test_case "json stable" `Quick json_report_is_stable ] );
      ( "resolver",
        [
          Alcotest.test_case "dummy arg shadows module var" `Quick
            resolver_dummy_arg_shadows_module_var;
          Alcotest.test_case "import redeclared locally" `Quick
            resolver_import_redeclared_locally;
          Alcotest.test_case "same-named locals distinct" `Quick
            resolver_same_named_locals_distinct;
          Alcotest.test_case "undeclared goes implicit" `Quick
            resolver_undeclared_name_goes_implicit;
          Alcotest.test_case "signature round-trip" `Quick resolver_signature_roundtrip;
        ] );
      ( "typecheck",
        [
          Alcotest.test_case "assignment mismatch" `Quick typecheck_assignment_mismatch;
          Alcotest.test_case "rank mismatch" `Quick typecheck_rank_mismatch;
          Alcotest.test_case "broadcast clean" `Quick typecheck_broadcast_is_clean;
        ] );
      ( "callcheck",
        [
          Alcotest.test_case "arity mismatch" `Quick callcheck_arity_mismatch;
          Alcotest.test_case "argument type mismatch" `Quick
            callcheck_argument_type_mismatch;
          Alcotest.test_case "intent at call site" `Quick callcheck_intent_at_call_site;
          Alcotest.test_case "writable actual clean" `Quick
            callcheck_writable_actual_is_clean;
        ] );
    ]
