(* Tests for rca_analysis: CFG construction, reaching-definitions and
   liveness fixed points, the diagnostics engine (each kind seeded and
   clean), conservative havoc for Unparsed statements, the differential
   metagraph oracle, and observational safety of static pruning. *)

open Rca_fortran
module A = Rca_analysis.Analysis
module Cfg = Rca_analysis.Cfg
module Dataflow = Rca_analysis.Dataflow
module Defuse = Rca_analysis.Defuse
module D = Rca_analysis.Diagnostics
module Oracle = Rca_analysis.Oracle
module MG = Rca_metagraph.Metagraph

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let parse src = Parser.parse_file ~strict:false ~file:"t.F90" src

let analyze src = A.analyze (parse src)

let diags src = (analyze src).A.diags

let of_kind k ds = List.filter (fun d -> d.D.kind = k) ds

let flow_of src ~sub =
  match A.find_sub (analyze src) ~module_:"m" ~sub with
  | Some sa -> sa.A.sa_flow
  | None -> Alcotest.failf "subprogram %s not analyzed" sub

let cfg_of src ~sub =
  match A.find_sub (analyze src) ~module_:"m" ~sub with
  | Some sa -> sa.A.sa_cfg
  | None -> Alcotest.failf "subprogram %s not analyzed" sub

let block_with (cfg : Cfg.t) pred =
  let found = ref None in
  Array.iteri
    (fun i instrs -> if Array.exists pred instrs && !found = None then found := Some i)
    cfg.Cfg.blocks;
  match !found with Some i -> i | None -> Alcotest.fail "no block matches"

(* --- CFG shape ---------------------------------------------------------------- *)

let cfg_straight_line () =
  let cfg =
    cfg_of ~sub:"s"
      "module m\ncontains\nsubroutine s()\nreal(r8) :: a, b\na = 1.0\nb = a\na = b\nend subroutine\nend module m"
  in
  check_int "three instructions" 3 (Cfg.n_instrs cfg);
  Alcotest.(check (list int)) "nothing unreachable" [] (Cfg.unreachable_lines cfg)

let cfg_if_else_branches () =
  let cfg =
    cfg_of ~sub:"s"
      "module m\nreal(r8) :: x, y\ncontains\nsubroutine s()\nif (x > 0.0) then\ny = 1.0\nelse\ny = 2.0\nend if\nx = y\nend subroutine\nend module m"
  in
  (* Cond + two branch assigns + join assign *)
  check_int "instructions" 4 (Cfg.n_instrs cfg);
  let cond = block_with cfg (function Cfg.Cond _ -> true | _ -> false) in
  check_int "condition block forks" 2 (List.length cfg.Cfg.succ.(cond));
  Alcotest.(check (list int)) "nothing unreachable" [] (Cfg.unreachable_lines cfg)

let cfg_do_loop_edges () =
  let cfg =
    cfg_of ~sub:"s"
      "module m\nreal(r8) :: acc\ncontains\nsubroutine s()\ninteger :: i\ndo i = 1, 10\nacc = acc + 1.0\nend do\nacc = acc * 2.0\nend subroutine\nend module m"
  in
  let head = block_with cfg (function Cfg.Do_header _ -> true | _ -> false) in
  (* zero-trip: the header reaches both the body and the code after *)
  check_int "header forks" 2 (List.length cfg.Cfg.succ.(head));
  check_bool "header has a back edge" true (List.length cfg.Cfg.pred.(head) >= 2);
  Alcotest.(check (list int)) "all reachable" [] (Cfg.unreachable_lines cfg)

let cfg_early_return_unreachable () =
  let cfg =
    cfg_of ~sub:"s"
      "module m\ncontains\nsubroutine s()\nreal(r8) :: x\nx = 1.0\nreturn\nx = 2.0\nend subroutine\nend module m"
  in
  Alcotest.(check (list int)) "statement after return" [ 7 ] (Cfg.unreachable_lines cfg)

let cfg_exit_unreachable_tail () =
  let cfg =
    cfg_of ~sub:"s"
      "module m\nreal(r8) :: a, b\ncontains\nsubroutine s()\ninteger :: i\ndo i = 1, 5\nexit\na = 1.0\nend do\nb = 2.0\nend subroutine\nend module m"
  in
  (* a = 1.0 (line 8) is dead; b = 2.0 (line 10) is reached via the exit *)
  Alcotest.(check (list int)) "only the post-exit body line" [ 8 ]
    (Cfg.unreachable_lines cfg)

(* --- dataflow fixed points ------------------------------------------------------ *)

let du_chain_on_kernel () =
  let flow =
    flow_of ~sub:"s"
      "module m\ncontains\nsubroutine s(x, y)\nreal(r8), intent(in) :: x\nreal(r8), intent(out) :: y\nreal(r8) :: t\nt = x + 1.0\ny = t * 2.0\nend subroutine\nend module m"
  in
  let chains = Dataflow.du_chains flow in
  check_bool "def t@7 reaches use t@8" true
    (List.exists
       (fun { Dataflow.du_def; du_use } ->
         du_def.Defuse.d_var.Rca_analysis.Scope.v_name = "t"
         && du_def.Defuse.d_line = 7 && du_use.Defuse.u_line = 8)
       chains)

let liveness_at_exit_is_escape_set () =
  let flow =
    flow_of ~sub:"s"
      "module m\ncontains\nsubroutine s(x, y)\nreal(r8), intent(in) :: x\nreal(r8), intent(out) :: y\nreal(r8) :: t\nt = x + 1.0\ny = t * 2.0\nend subroutine\nend module m"
  in
  let live = Dataflow.live_out_names flow flow.Dataflow.cfg.Cfg.exit_ in
  check_bool "intent(out) live at exit" true (List.mem "y" live);
  check_bool "local dead at exit" false (List.mem "t" live)

let loop_carried_value_not_dead () =
  let ds =
    diags
      "module m\ncontains\nsubroutine s(y)\nreal(r8), intent(out) :: y\nreal(r8) :: acc\ninteger :: i\nacc = 0.0\ndo i = 1, 4\nacc = acc + 1.0\nend do\ny = acc\nend subroutine\nend module m"
  in
  check_int "no findings on the accumulation kernel" 0 (List.length ds)

(* --- diagnostics: each kind seeded + clean -------------------------------------- *)

let use_before_def_definite () =
  let ds =
    diags
      "module m\ncontains\nsubroutine s(y)\nreal(r8), intent(out) :: y\nreal(r8) :: t\ny = t\nend subroutine\nend module m"
  in
  match of_kind D.Use_before_def ds with
  | [ d ] ->
      check_bool "error severity" true (d.D.severity = D.Error);
      check_int "line" 6 d.D.line;
      Alcotest.(check string) "variable" "t" d.D.var
  | _ -> Alcotest.fail "expected exactly one use-before-def"

let use_before_def_clean () =
  let ds =
    diags
      "module m\ncontains\nsubroutine s(y)\nreal(r8), intent(out) :: y\nreal(r8) :: t\nt = 1.0\ny = t\nend subroutine\nend module m"
  in
  check_int "no uninit findings" 0
    (List.length (of_kind D.Use_before_def ds) + List.length (of_kind D.Use_maybe_uninit ds))

let maybe_uninit_on_one_branch () =
  let ds =
    diags
      "module m\ncontains\nsubroutine s(x, y)\nreal(r8), intent(in) :: x\nreal(r8), intent(out) :: y\nreal(r8) :: t\nif (x > 0.0) then\nt = 1.0\nend if\ny = t\nend subroutine\nend module m"
  in
  (match of_kind D.Use_maybe_uninit ds with
  | [ d ] ->
      check_bool "warning severity" true (d.D.severity = D.Warning);
      check_int "line" 10 d.D.line
  | _ -> Alcotest.fail "expected exactly one maybe-uninit");
  check_int "not a definite error" 0 (List.length (of_kind D.Use_before_def ds))

let maybe_uninit_clean_when_both_branches_assign () =
  let ds =
    diags
      "module m\ncontains\nsubroutine s(x, y)\nreal(r8), intent(in) :: x\nreal(r8), intent(out) :: y\nreal(r8) :: t\nif (x > 0.0) then\nt = 1.0\nelse\nt = 2.0\nend if\ny = t\nend subroutine\nend module m"
  in
  check_int "no uninit findings" 0
    (List.length (of_kind D.Use_before_def ds) + List.length (of_kind D.Use_maybe_uninit ds))

let dead_assignment_detected () =
  let ds =
    diags
      "module m\ncontains\nsubroutine s(y)\nreal(r8), intent(out) :: y\nreal(r8) :: t\nt = 1.0\nt = 2.0\ny = t\nend subroutine\nend module m"
  in
  match of_kind D.Dead_assignment ds with
  | [ d ] ->
      check_int "overwritten store" 6 d.D.line;
      Alcotest.(check string) "variable" "t" d.D.var
  | _ -> Alcotest.fail "expected exactly one dead assignment"

let unused_and_shadowed () =
  let ds =
    diags
      "module m\nreal(r8) :: w\ncontains\nsubroutine s(y)\nreal(r8), intent(out) :: y\nreal(r8) :: w\nreal(r8) :: unused_v\nw = 1.0\ny = w\nend subroutine\nend module m"
  in
  (match of_kind D.Unused_variable ds with
  | [ d ] -> Alcotest.(check string) "unused variable" "unused_v" d.D.var
  | _ -> Alcotest.fail "expected exactly one unused variable");
  match of_kind D.Shadowed_variable ds with
  | [ d ] ->
      Alcotest.(check string) "shadowing local" "w" d.D.var;
      check_bool "info severity" true (d.D.severity = D.Info)
  | _ -> Alcotest.fail "expected exactly one shadowed variable"

let write_to_intent_in () =
  let ds =
    diags
      "module m\nreal(r8) :: g\ncontains\nsubroutine s(x)\nreal(r8), intent(in) :: x\nx = 3.0\ng = x\nend subroutine\nend module m"
  in
  match of_kind D.Write_to_intent_in ds with
  | [ d ] ->
      check_bool "error severity" true (d.D.severity = D.Error);
      check_int "line" 6 d.D.line
  | _ -> Alcotest.fail "expected exactly one intent(in) write"

let intent_out_never_set () =
  let seeded =
    diags
      "module m\nreal(r8) :: g\ncontains\nsubroutine s(y)\nreal(r8), intent(out) :: y\ng = 1.0\nend subroutine\nend module m"
  in
  (match of_kind D.Intent_out_never_set seeded with
  | [ d ] -> Alcotest.(check string) "variable" "y" d.D.var
  | _ -> Alcotest.fail "expected exactly one intent(out) finding");
  let clean =
    diags
      "module m\ncontains\nsubroutine s(y)\nreal(r8), intent(out) :: y\ny = 1.0\nend subroutine\nend module m"
  in
  check_int "assigned intent(out) is fine" 0
    (List.length (of_kind D.Intent_out_never_set clean))

let unreachable_reported () =
  let ds =
    diags
      "module m\ncontains\nsubroutine s()\nreal(r8) :: x\nx = 1.0\nreturn\nx = 2.0\nend subroutine\nend module m"
  in
  match of_kind D.Unreachable_code ds with
  | [ d ] -> check_int "line" 7 d.D.line
  | _ -> Alcotest.fail "expected exactly one unreachable finding"

(* --- interprocedural summaries --------------------------------------------------- *)

let call_site_defines_actual () =
  (* `call setval(a)` must count as a definition of `a`: no use-before-def
     on the later read.  Both via declared intent(out) and via the
     read/write summary of an intent-free callee. *)
  let ds =
    diags
      "module m\ncontains\nsubroutine setval(v)\nreal(r8), intent(out) :: v\nv = 3.0\nend subroutine\nsubroutine noint(v)\nreal(r8) :: v\nv = 4.0\nend subroutine\nsubroutine use_it(r, q)\nreal(r8), intent(out) :: r, q\nreal(r8) :: a, b\ncall setval(a)\ncall noint(b)\nr = a\nq = b\nend subroutine\nend module m"
  in
  check_int "no uninit findings" 0
    (List.length (of_kind D.Use_before_def ds) + List.length (of_kind D.Use_maybe_uninit ds))

let missing_call_makes_use_before_def () =
  let ds =
    diags
      "module m\ncontains\nsubroutine setval(v)\nreal(r8), intent(out) :: v\nv = 3.0\nend subroutine\nsubroutine use_it(r)\nreal(r8), intent(out) :: r\nreal(r8) :: a\nr = a\nend subroutine\nend module m"
  in
  check_int "definite use-before-def" 1 (List.length (of_kind D.Use_before_def ds))

(* --- Unparsed statements are conservative havoc ---------------------------------- *)

let unparsed_is_conservative () =
  (* `where` defeats the parser.  The havoc model must (a) not report its
     reads as use-before-def and (b) keep earlier stores alive. *)
  let ds =
    diags
      "module m\ncontains\nsubroutine s()\nreal(r8) :: q(4), qt(4)\nqt = 0.0\nwhere (q > 0.0) qt = qt + q * 0.5\nend subroutine\nend module m"
  in
  check_int "no findings at all" 0 (List.length ds)

(* --- differential oracle ---------------------------------------------------------- *)

let oracle_green_on_synth_model () =
  let fixture = Rca_experiments.Fixture.make Rca_synth.Config.tiny in
  let an = A.analyze fixture.Rca_experiments.Fixture.covered_program in
  let rep = A.check_oracle an fixture.Rca_experiments.Fixture.mg in
  check_bool "no mismatches, no orphans" true (Oracle.ok rep);
  check_bool "pairs derived" true (rep.Oracle.rp_pairs > 0);
  check_int "every edge explained" rep.Oracle.rp_edges rep.Oracle.rp_pairs

let analyze_scope prog = (A.analyze prog).A.program_scope

let oracle_mismatch_has_provenance () =
  let prog = parse "module m\nreal(r8) :: x, y\ncontains\nsubroutine s()\ny = x\nend subroutine\nend module m" in
  let mg = MG.build prog in
  let x =
    match MG.find_node mg ~module_:"m" ~sub:"" ~name:"x" with
    | Some id -> id
    | None -> Alcotest.fail "x node missing"
  in
  (* dropping x's edges leaves the static pair x -> y unexplained *)
  let pruned = Rca_metagraph.Prune.without_nodes mg ~dead:[ x ] in
  let rep = Oracle.check (analyze_scope prog) pruned in
  match rep.Oracle.rp_mismatches with
  | [ m ] ->
      Alcotest.(check string) "file" "t.F90" m.Oracle.mis_pair.Oracle.p_file;
      check_int "line" 5 m.Oracle.mis_pair.Oracle.p_line
  | ms -> Alcotest.failf "expected one mismatch, got %d" (List.length ms)

(* --- static pruning --------------------------------------------------------------- *)

let dead_var_detection_is_precise () =
  let an =
    analyze
      "module m\nreal(r8) :: out_v\ncontains\nsubroutine s()\nreal(r8) :: deadl, livel\ndeadl = 1.0\nlivel = 2.0\nout_v = livel\nend subroutine\nend module m"
  in
  Alcotest.(check (list (triple string string string)))
    "only the never-read local" [ ("m", "s", "deadl") ] (A.dead_var_keys an)

let static_prune_observationally_safe () =
  (* Acceptance criterion: the GOFFGRATCH pipeline outcome is identical
     with and without static dead-node pruning. *)
  let open Rca_experiments in
  let params =
    {
      (Harness.default_params Rca_synth.Config.tiny) with
      Harness.ensemble_members = 15;
      experimental_members = 6;
    }
  in
  let base = Harness.run ~validate_sampling:false Experiments.goffgratch params in
  let pruned =
    Harness.run ~validate_sampling:false Experiments.goffgratch
      { params with Harness.static_prune = true }
  in
  check_int "slice nodes" base.Harness.slice_nodes pruned.Harness.slice_nodes;
  check_int "slice edges" base.Harness.slice_edges pruned.Harness.slice_edges;
  check_int "refine iterations" (Harness.iteration_count base) (Harness.iteration_count pruned);
  Alcotest.(check (list int)) "final candidate set"
    (List.sort compare base.Harness.pipeline.Rca_core.Pipeline.result.Rca_core.Refine.final_nodes)
    (List.sort compare pruned.Harness.pipeline.Rca_core.Pipeline.result.Rca_core.Refine.final_nodes);
  check_bool "bugs located" base.Harness.bugs_located pruned.Harness.bugs_located;
  check_bool "analysis attached when pruning" true (pruned.Harness.analysis <> None)

(* --- report ------------------------------------------------------------------------ *)

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let json_report_is_stable () =
  let an =
    analyze
      "module m\ncontains\nsubroutine s(y)\nreal(r8), intent(out) :: y\nreal(r8) :: t\ny = t\nend subroutine\nend module m"
  in
  let json = A.report_json an in
  check_bool "has version" true (contains_substring json "\"version\": 1");
  check_bool "has the finding" true (contains_substring json "\"use-before-def\"")

let () =
  Alcotest.run "rca_analysis"
    [
      ( "cfg",
        [
          Alcotest.test_case "straight line" `Quick cfg_straight_line;
          Alcotest.test_case "if/else" `Quick cfg_if_else_branches;
          Alcotest.test_case "do loop" `Quick cfg_do_loop_edges;
          Alcotest.test_case "early return" `Quick cfg_early_return_unreachable;
          Alcotest.test_case "exit" `Quick cfg_exit_unreachable_tail;
        ] );
      ( "dataflow",
        [
          Alcotest.test_case "def-use chain" `Quick du_chain_on_kernel;
          Alcotest.test_case "liveness at exit" `Quick liveness_at_exit_is_escape_set;
          Alcotest.test_case "loop-carried" `Quick loop_carried_value_not_dead;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "use-before-def" `Quick use_before_def_definite;
          Alcotest.test_case "use-before-def clean" `Quick use_before_def_clean;
          Alcotest.test_case "maybe-uninit" `Quick maybe_uninit_on_one_branch;
          Alcotest.test_case "maybe-uninit clean" `Quick maybe_uninit_clean_when_both_branches_assign;
          Alcotest.test_case "dead assignment" `Quick dead_assignment_detected;
          Alcotest.test_case "unused + shadowed" `Quick unused_and_shadowed;
          Alcotest.test_case "write to intent(in)" `Quick write_to_intent_in;
          Alcotest.test_case "intent(out) never set" `Quick intent_out_never_set;
          Alcotest.test_case "unreachable" `Quick unreachable_reported;
        ] );
      ( "interprocedural",
        [
          Alcotest.test_case "call defines actual" `Quick call_site_defines_actual;
          Alcotest.test_case "missing call" `Quick missing_call_makes_use_before_def;
        ] );
      ( "havoc",
        [ Alcotest.test_case "unparsed conservative" `Quick unparsed_is_conservative ] );
      ( "oracle",
        [
          Alcotest.test_case "green on synth model" `Quick oracle_green_on_synth_model;
          Alcotest.test_case "mismatch provenance" `Quick oracle_mismatch_has_provenance;
        ] );
      ( "pruning",
        [
          Alcotest.test_case "dead vars precise" `Quick dead_var_detection_is_precise;
          Alcotest.test_case "observational safety" `Quick static_prune_observationally_safe;
        ] );
      ( "report",
        [ Alcotest.test_case "json stable" `Quick json_report_is_stable ] );
    ]
