(* Tests for rca_core (slicing, detectors, Algorithm 5.4 refinement,
   module ranking) and integration tests running the paper's experiments
   end-to-end on the tiny synthetic model. *)

module MG = Rca_metagraph.Metagraph
module G = Rca_graph
open Rca_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let build src = MG.build (Rca_fortran.Parser.parse_file ~strict:false ~file:"t.F90" src)

(* A small program with two clusters (physics-like and dynamics-like)
   bridged through a state variable, an isolated diagnostic, and an
   outfld mapping. *)
let two_cluster_src =
  {|
module state_m
  real(r8) :: t, u
end module state_m

module phys_m
  use state_m
  real(r8) :: p1, p2, p3, p4, heating
contains
  subroutine phys_run()
    p1 = t * 2.0
    p2 = p1 + t
    p3 = p1 * p2
    p4 = p3 + p2 + p1
    heating = p4 * 0.5
    t = t + heating
    call outfld('heat', heating)
  end subroutine phys_run
end module phys_m

module dyn_m
  use state_m
  real(r8) :: d1, d2, d3, momentum
contains
  subroutine dyn_run()
    d1 = u * 0.9
    d2 = d1 + u
    d3 = d2 * d1
    momentum = d3 + d2
    u = u + momentum * 0.01
    t = t + u * 0.001
    call outfld('mom', momentum)
  end subroutine dyn_run
end module dyn_m

module iso_m
  real(r8) :: lonely_in, lonely
contains
  subroutine iso_run()
    lonely = lonely_in * 3.0
    call outfld('lone', lonely)
  end subroutine iso_run
end module iso_m
|}

let mg2 = lazy (build two_cluster_src)

let find mg ~module_ ~canonical =
  match
    List.filter
      (fun id -> (MG.node mg id).MG.module_ = module_)
      (MG.nodes_with_canonical mg canonical)
  with
  | [ id ] -> id
  | _ -> Alcotest.failf "node %s.%s not found/ambiguous" module_ canonical

(* --- Slice ----------------------------------------------------------------------- *)

let slice_isolated_variable () =
  let mg = Lazy.force mg2 in
  let s = Slice.of_internals mg [ "lonely" ] in
  check_int "two nodes" 2 (Slice.size s);
  check_bool "contains lonely" true (Slice.contains s (find mg ~module_:"iso_m" ~canonical:"lonely"))

let slice_follows_ancestors () =
  let mg = Lazy.force mg2 in
  let s = Slice.of_internals mg [ "heating" ] in
  (* heating <- p4 <- ... <- t <- u-side (t += u*0.001) : everything except
     the isolated module *)
  check_bool "contains physics" true
    (Slice.contains s (find mg ~module_:"phys_m" ~canonical:"p1"));
  check_bool "contains dynamics via t" true
    (Slice.contains s (find mg ~module_:"dyn_m" ~canonical:"momentum"));
  check_bool "excludes isolated" false
    (Slice.contains s (find mg ~module_:"iso_m" ~canonical:"lonely"))

let slice_restriction_cuts_modules () =
  let mg = Lazy.force mg2 in
  let s =
    Slice.of_internals ~keep_module:(fun m -> m <> "dyn_m") mg [ "heating" ]
  in
  check_bool "no dynamics nodes" true
    (List.for_all (fun id -> (MG.node mg id).MG.module_ <> "dyn_m") s.Slice.nodes)

let slice_of_outputs_uses_io_map () =
  let mg = Lazy.force mg2 in
  let s = Slice.of_outputs mg [ "mom" ] in
  check_bool "momentum targeted" true
    (List.mem (find mg ~module_:"dyn_m" ~canonical:"momentum") s.Slice.targets);
  (* dynamics side only: physics never feeds u *)
  check_bool "no physics" true
    (List.for_all (fun id -> (MG.node mg id).MG.module_ <> "phys_m") s.Slice.nodes)

let slice_min_cluster_drops_residue () =
  let mg = Lazy.force mg2 in
  let s = Slice.of_internals ~min_cluster:3 mg [ "lonely"; "heating" ] in
  (* the 2-node lonely cluster is dropped *)
  check_bool "lonely dropped" false
    (Slice.contains s (find mg ~module_:"iso_m" ~canonical:"lonely"))

(* --- Detector --------------------------------------------------------------------- *)

let reachability_detector () =
  let mg = Lazy.force mg2 in
  let bug = find mg ~module_:"dyn_m" ~canonical:"d1" in
  let detect = Detector.reachability mg ~bug_nodes:[ bug ] in
  let momentum = find mg ~module_:"dyn_m" ~canonical:"momentum" in
  let p1 = find mg ~module_:"phys_m" ~canonical:"p1" in
  let t = find mg ~module_:"state_m" ~canonical:"t" in
  Alcotest.(check (list int)) "momentum and t reachable, p1 too via t"
    (List.sort compare [ momentum; p1; t ])
    (List.sort compare (detect [ momentum; p1; t ]));
  (* heating is downstream of t as well: everything physics reachable *)
  let lonely = find mg ~module_:"iso_m" ~canonical:"lonely" in
  Alcotest.(check (list int)) "lonely unreachable" [] (detect [ lonely ])

let set_detector () =
  let d = Detector.of_differing_set [ 3; 5 ] in
  Alcotest.(check (list int)) "filters" [ 3; 5 ] (d [ 1; 3; 5; 7 ]);
  Alcotest.(check (list int)) "never" [] (Detector.never [ 1; 2 ])

(* --- Refine ----------------------------------------------------------------------- *)

let refine_converges_on_small_graph () =
  let mg = Lazy.force mg2 in
  let s = Slice.of_internals mg [ "lonely" ] in
  let r =
    Refine.refine mg ~initial:s.Slice.nodes ~detect:Detector.never ~stop_size:30
  in
  check_bool "converged immediately" true (r.Refine.outcome = Refine.Converged);
  check_int "kept nodes" 2 (List.length r.Refine.final_nodes)

let refine_8a_discards_influencers () =
  let mg = Lazy.force mg2 in
  let s = Slice.of_internals mg [ "heating" ] in
  let r =
    Refine.refine mg ~initial:s.Slice.nodes ~detect:Detector.never ~stop_size:2
      ~max_iterations:3
  in
  (* nothing ever detected: each iteration removes the sampled nodes'
     ancestor closure *)
  check_bool "made progress" true
    (List.length r.Refine.final_nodes < Slice.size s);
  check_bool "has iterations" true (r.Refine.iterations <> [])

let refine_8b_keeps_bug_side () =
  let mg = Lazy.force mg2 in
  let s = Slice.of_internals mg [ "heating" ] in
  let bug = find mg ~module_:"dyn_m" ~canonical:"d1" in
  let detect = Detector.reachability mg ~bug_nodes:[ bug ] in
  let r =
    Refine.refine mg ~initial:s.Slice.nodes ~detect ~stop_size:2 ~max_iterations:5
  in
  (* the bug node must never be excluded *)
  check_bool "bug retained or converged" true
    (List.mem bug r.Refine.final_nodes || r.Refine.outcome = Refine.Converged)

let refine_fixed_point_detected () =
  (* fully connected core: detection keeps everything -> fixed point *)
  let src =
    {|
module m
  real(r8) :: a, b, c, d, e
contains
  subroutine s()
    a = b + c + d + e
    b = a + c + d
    c = a + b + e
    d = a + b + c
    e = a + d + c
  end subroutine s
end module m
|}
  in
  let mg = build src in
  let all = List.init (MG.n_nodes mg) (fun i -> i) in
  let detect sampled = sampled in
  (* everything differs *)
  let r = Refine.refine mg ~initial:all ~detect ~stop_size:2 ~max_iterations:5 in
  check_bool "fixed point" true (r.Refine.outcome = Refine.Fixed_point)

let refine_choose_when_stuck_narrows () =
  (* fully connected core: a plain 8b step cannot shrink it, but the
     single-node narrowing fallback (the paper's Section 6.3 proposal)
     picks the detected node with the smallest ancestry and refines *)
  let src =
    {|
module m
  real(r8) :: a, b, c, d, tip
contains
  subroutine s()
    a = b + c + d
    b = a + c + d
    c = a + b + d
    d = a + b + c
    tip = a
  end subroutine s
end module m
|}
  in
  let mg = build src in
  let all = List.init (MG.n_nodes mg) (fun i -> i) in
  let tip = find mg ~module_:"m" ~canonical:"tip" in
  let a = find mg ~module_:"m" ~canonical:"a" in
  let stuck =
    Refine.refine mg ~initial:all ~detect:(fun s -> s) ~stop_size:2 ~max_iterations:5
  in
  check_bool "without fallback: fixed point" true (stuck.Refine.outcome = Refine.Fixed_point);
  (* magnitude chooser: tip has the greatest observed difference *)
  let magnitude v = if v = tip then 10.0 else 1.0 in
  let narrowed =
    Refine.refine mg ~initial:all ~detect:(fun s -> s) ~stop_size:2 ~max_iterations:5
      ~choose_when_stuck:(fun _nodes detected -> Refine.by_magnitude magnitude detected)
  in
  check_bool "with fallback: progressed" true
    (List.length narrowed.Refine.final_nodes < List.length all);
  check_bool "tip ancestry kept" true
    (List.mem a narrowed.Refine.final_nodes || List.mem tip narrowed.Refine.final_nodes)

let smallest_ancestry_chooser () =
  let mg = Lazy.force mg2 in
  let s = Slice.of_internals mg [ "heating" ] in
  let d1 = find mg ~module_:"dyn_m" ~canonical:"d1" in
  let heating = find mg ~module_:"phys_m" ~canonical:"heating" in
  (* d1's in-slice ancestry (u-side only) is smaller than heating's *)
  Alcotest.(check (option int)) "picks d1" (Some d1)
    (Refine.smallest_ancestry mg s.Slice.nodes [ d1; heating ])

let refine_skips_synthetic_sampling_sites () =
  let src =
    "module m\nreal(r8) :: a, b, c\ncontains\nsubroutine s()\nb = min(a, 1.0)\nc = min(b, 2.0)\nend subroutine\nend module m"
  in
  let mg = build src in
  let all = List.init (MG.n_nodes mg) (fun i -> i) in
  let sampled = Refine.central_nodes mg ~m_sample:10 all in
  check_bool "no synthetic nodes sampled" true
    (List.for_all (fun id -> not (MG.node mg id).MG.synthetic) sampled)

let refine_reports_sizes () =
  let mg = Lazy.force mg2 in
  let s = Slice.of_internals mg [ "heating" ] in
  let r =
    Refine.refine mg ~initial:s.Slice.nodes ~detect:Detector.never ~stop_size:2
      ~max_iterations:1
  in
  match r.Refine.iterations with
  | it :: _ ->
      check_int "node count matches" (Slice.size s) it.Refine.n_nodes;
      check_bool "sampled nonempty" true (it.Refine.sampled <> [])
  | [] -> Alcotest.fail "expected an iteration"

(* --- Module rank ------------------------------------------------------------------- *)

let module_rank_orders_by_centrality () =
  let mg = Lazy.force mg2 in
  let ranking = Module_rank.rank mg in
  check_bool "all modules present" true (List.length ranking >= 4);
  (* state_m bridges everything: must rank first or second *)
  let top2 = List.filteri (fun i _ -> i < 2) ranking |> List.map (fun e -> e.Module_rank.module_name) in
  check_bool "state module central" true (List.mem "state_m" top2)

let module_rank_by_loc () =
  let locs = [ ("a", 10); ("b", 300); ("c", 50) ] in
  Alcotest.(check (list string)) "largest two" [ "b"; "c" ] (Module_rank.rank_by_loc locs 2)

let quotient_summary_sizes () =
  let mg = Lazy.force mg2 in
  let n, m = Module_rank.quotient_summary mg in
  check_int "four modules with nodes" 4 n;
  check_bool "has inter-module edges" true (m > 0)

(* --- Pipeline ---------------------------------------------------------------------- *)

let pipeline_end_to_end () =
  let mg = Lazy.force mg2 in
  let bug = find mg ~module_:"dyn_m" ~canonical:"d1" in
  let detect = Detector.reachability mg ~bug_nodes:[ bug ] in
  let t = Pipeline.run ~min_cluster:1 ~stop_size:3 mg ~outputs:[ "mom" ] ~detect in
  check_bool "slice nonempty" true (Slice.size t.Pipeline.slice > 0);
  let located = Pipeline.located_bugs mg t ~bug_nodes:[ bug ] in
  check_bool "bug located" true (located <> [])

(* --- integration: experiments on the tiny model ------------------------------------- *)

open Rca_experiments

let tiny_params =
  lazy
    { (Harness.default_params Rca_synth.Config.tiny) with
      Harness.ensemble_members = 15;
      experimental_members = 6 }

let wsubbug_end_to_end () =
  let r = Harness.run Experiments.wsubbug (Lazy.force tiny_params) in
  Alcotest.(check string) "ect fails" "Fail" (Rca_ect.Ect.verdict_string r.Harness.ect_verdict);
  (* the paper's hallmark: median distance ranks wsub orders of magnitude
     above the runner-up *)
  (match r.Harness.median_selected with
  | top :: rest ->
      Alcotest.(check string) "wsub first" "wsub" top.Rca_stats.Select.name;
      (match rest with
      | second :: _ ->
          check_bool ">1000x" true
            (top.Rca_stats.Select.score > 1000.0 *. second.Rca_stats.Select.score)
      | [] -> ())
  | [] -> Alcotest.fail "selection empty");
  check_bool "tiny isolated slice" true (r.Harness.slice_nodes <= 20);
  check_bool "bug located" true r.Harness.bugs_located;
  (* the tiny slice can converge before any sampling iteration *)
  (match r.Harness.sampling_agreement with
  | None -> ()
  | Some a -> check_bool "detectors agree" true (a >= 0.8))

let randombug_end_to_end () =
  let r = Harness.run Experiments.randombug (Lazy.force tiny_params) in
  Alcotest.(check string) "ect fails" "Fail" (Rca_ect.Ect.verdict_string r.Harness.ect_verdict);
  check_bool "omega selected" true
    (List.mem "omega" (List.map (fun v -> v.Rca_stats.Select.name) r.Harness.median_selected));
  check_bool "bug located" true r.Harness.bugs_located

let rand_mt_end_to_end () =
  let r = Harness.run Experiments.rand_mt (Lazy.force tiny_params) in
  Alcotest.(check string) "ect fails" "Fail" (Rca_ect.Ect.verdict_string r.Harness.ect_verdict);
  (* the PRNG swap must surface the radiative flux outputs *)
  check_bool "flux outputs selected" true
    (List.exists (fun n -> List.mem n [ "flds"; "flns"; "fsds"; "sols" ]) r.Harness.affected_outputs);
  check_bool "bug located" true r.Harness.bugs_located

let goffgratch_end_to_end () =
  let r = Harness.run Experiments.goffgratch (Lazy.force tiny_params) in
  Alcotest.(check string) "ect fails" "Fail" (Rca_ect.Ect.verdict_string r.Harness.ect_verdict);
  check_bool "bug located" true r.Harness.bugs_located;
  check_bool "multi-iteration or fixed point" true (Harness.iteration_count r >= 1)

let avx2_end_to_end () =
  let r = Harness.run Experiments.avx2 (Lazy.force tiny_params) in
  Alcotest.(check string) "ect fails" "Fail" (Rca_ect.Ect.verdict_string r.Harness.ect_verdict);
  check_bool "bug located" true r.Harness.bugs_located

let dyn3bug_end_to_end () =
  let r = Harness.run Experiments.dyn3bug (Lazy.force tiny_params) in
  Alcotest.(check string) "ect fails" "Fail" (Rca_ect.Ect.verdict_string r.Harness.ect_verdict);
  check_bool "z3 among top selected" true
    (List.exists (fun v -> v.Rca_stats.Select.name = "z3")
       (Rca_stats.Select.take 3 r.Harness.median_selected));
  check_bool "bug located" true r.Harness.bugs_located

let consistent_run_passes () =
  (* no injection, no configuration change: the ECT must pass *)
  let p = Lazy.force tiny_params in
  let fixture = Fixture.make p.Harness.config in
  let ens = Fixture.control_ensemble fixture ~members:p.Harness.ensemble_members in
  let ect = Rca_ect.Ect.fit ~var_names:Rca_synth.Model.output_names ens in
  let test = Fixture.experimental_runs fixture ~members:3 ~opts:(fun o -> o) in
  Alcotest.(check string) "pass" "Pass"
    (Rca_ect.Ect.verdict_string (Rca_ect.Ect.evaluate ect test).Rca_ect.Ect.verdict)

let avx2_kernel_flags () =
  let fixture = Fixture.make Rca_synth.Config.tiny in
  let flags = Avx2_kernel.kgen_flags fixture in
  let names = List.map (fun d -> d.Rca_interp.Kernel.var) flags in
  (* the energy-fixer consumers must be flagged *)
  List.iter
    (fun expected -> check_bool (expected ^ " flagged") true (List.mem expected names))
    [ "tlat"; "nctend"; "nitend"; "qvlat"; "qniic"; "efix" ];
  (* and something unrelated to the fixer must not be *)
  check_bool "icefrac not flagged" false (List.mem "icefrac" names)

let table1_tiny_shape () =
  let p =
    { (Table1.default_params Rca_synth.Config.tiny) with
      Table1.ensemble_members = 12;
      pool_members = 6;
      trials = 6;
      k = 14;
      random_samples = 2 }
  in
  let r = Table1.run p in
  match r.Table1.rows with
  | [ all_on; _largest; _random; central; all_off ] ->
      check_bool "all-on fails" true (all_on.Table1.failure_rate > 0.7);
      check_bool "central-off low" true
        (central.Table1.failure_rate < all_on.Table1.failure_rate);
      check_bool "all-off lowest" true (all_off.Table1.failure_rate <= 0.2)
  | _ -> Alcotest.fail "expected five rows"

let ablation_variants_locate () =
  let rows =
    Ablation.run
      ~variants:
        [
          {
            Ablation.label = "paper";
            partitioner = Some Refine.Girvan_newman;
            measure = Refine.Eigenvector_in;
            m_sample = 5;
          };
          {
            Ablation.label = "flat";
            partitioner = None;
            measure = Refine.Pagerank;
            m_sample = 5;
          };
        ]
      Rca_synth.Config.tiny
  in
  check_int "rows = variants x cases" (2 * 5) (List.length rows);
  (* every variant locates the isolated WSUBBUG *)
  List.iter
    (fun r ->
      if r.Ablation.experiment = "WSUBBUG" then
        check_bool (r.Ablation.variant ^ " locates wsubbug") true r.Ablation.located)
    rows

let coverage_report_shape () =
  let fixture = Fixture.make Rca_synth.Config.tiny in
  let rep = fixture.Fixture.coverage_report in
  check_bool "some modules unexecuted" true
    (rep.Rca_coverage.Coverage.modules_executed < rep.Rca_coverage.Coverage.modules_total);
  (* at the tiny scale roughly half the subprograms are dead; the paper's
     60% shows up at the larger configs *)
  check_bool "many subprograms unexecuted" true
    (rep.Rca_coverage.Coverage.subprograms_executed * 10
    < rep.Rca_coverage.Coverage.subprograms_total * 7)

let figures_well_formed () =
  let fixture = Fixture.make Rca_synth.Config.tiny in
  let fig4 = Figures.fig4 fixture.Fixture.mg in
  check_bool "histogram nonempty" true (fig4.Figures.histogram <> []);
  let slice = Slice.of_outputs fixture.Fixture.mg [ "aqsnow"; "cloud" ] in
  let fig10 = Figures.fig10 slice in
  check_bool "slice histogram nonempty" true (fig10.Figures.histogram <> []);
  let fig11 = Figures.fig11 slice in
  check_bool "eigen series covers slice" true
    (List.length fig11.Figures.eigen_series = Slice.size slice);
  check_bool "hashimoto shorter or equal (isolated nodes drop)" true
    (List.length fig11.Figures.hashimoto_series <= List.length fig11.Figures.eigen_series)

let () =
  Alcotest.run "rca_core"
    [
      ( "slice",
        [
          Alcotest.test_case "isolated" `Quick slice_isolated_variable;
          Alcotest.test_case "ancestors" `Quick slice_follows_ancestors;
          Alcotest.test_case "module restriction" `Quick slice_restriction_cuts_modules;
          Alcotest.test_case "outputs via io map" `Quick slice_of_outputs_uses_io_map;
          Alcotest.test_case "min cluster" `Quick slice_min_cluster_drops_residue;
        ] );
      ( "detector",
        [
          Alcotest.test_case "reachability" `Quick reachability_detector;
          Alcotest.test_case "set detector" `Quick set_detector;
        ] );
      ( "refine",
        [
          Alcotest.test_case "converges" `Quick refine_converges_on_small_graph;
          Alcotest.test_case "8a discards" `Quick refine_8a_discards_influencers;
          Alcotest.test_case "8b keeps bug side" `Quick refine_8b_keeps_bug_side;
          Alcotest.test_case "fixed point" `Quick refine_fixed_point_detected;
          Alcotest.test_case "stuck fallback narrows" `Quick refine_choose_when_stuck_narrows;
          Alcotest.test_case "smallest ancestry" `Quick smallest_ancestry_chooser;
          Alcotest.test_case "synthetic not sampled" `Quick refine_skips_synthetic_sampling_sites;
          Alcotest.test_case "iteration reports" `Quick refine_reports_sizes;
        ] );
      ( "module rank",
        [
          Alcotest.test_case "centrality order" `Quick module_rank_orders_by_centrality;
          Alcotest.test_case "by loc" `Quick module_rank_by_loc;
          Alcotest.test_case "quotient" `Quick quotient_summary_sizes;
        ] );
      ("pipeline", [ Alcotest.test_case "end to end" `Quick pipeline_end_to_end ]);
      ( "experiments",
        [
          Alcotest.test_case "WSUBBUG" `Slow wsubbug_end_to_end;
          Alcotest.test_case "RANDOMBUG" `Slow randombug_end_to_end;
          Alcotest.test_case "RAND-MT" `Slow rand_mt_end_to_end;
          Alcotest.test_case "GOFFGRATCH" `Slow goffgratch_end_to_end;
          Alcotest.test_case "AVX2" `Slow avx2_end_to_end;
          Alcotest.test_case "DYN3BUG" `Slow dyn3bug_end_to_end;
          Alcotest.test_case "consistent passes" `Slow consistent_run_passes;
          Alcotest.test_case "AVX2 kernel flags" `Slow avx2_kernel_flags;
          Alcotest.test_case "Table 1 shape" `Slow table1_tiny_shape;
          Alcotest.test_case "ablation" `Slow ablation_variants_locate;
          Alcotest.test_case "coverage shape" `Quick coverage_report_shape;
          Alcotest.test_case "figures" `Quick figures_well_formed;
        ] );
    ]
