(* Tests for the rca_fortran library: source handling, lexer, parser,
   pretty-printer round trips and the relaxed fallback parsers. *)

open Rca_fortran

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)
let check_slist = Alcotest.(check (list string))

(* --- Source ----------------------------------------------------------------- *)

let logical_lines_basic () =
  let src = "a = 1\nb = 2\n\n! comment only\nc = 3" in
  let lines = Source.logical_lines src in
  check_int "count" 3 (List.length lines);
  check_slist "texts" [ "a = 1"; "b = 2"; "c = 3" ]
    (List.map (fun l -> l.Source.text) lines);
  Alcotest.(check (list int)) "line numbers" [ 1; 2; 5 ]
    (List.map (fun l -> l.Source.line) lines)

let continuation_joining () =
  let src = "x = 1 + &\n    2 + &\n    3\ny = 4" in
  let lines = Source.logical_lines src in
  check_int "count" 2 (List.length lines);
  (match lines with
  | l :: _ ->
      check_str "joined" "x = 1 + 2 + 3" (String.concat " " (String.split_on_char ' ' l.Source.text |> List.filter (( <> ) "")));
      check_int "starts at 1" 1 l.Source.line
  | [] -> Alcotest.fail "no lines")

let continuation_leading_ampersand () =
  let src = "x = 1 + &\n  & 2" in
  match Source.logical_lines src with
  | [ l ] -> check_bool "no ampersand" false (String.contains l.Source.text '&')
  | _ -> Alcotest.fail "expected one logical line"

let comment_inside_string_kept () =
  let src = "s = 'not ! a comment' ! real comment" in
  match Source.logical_lines src with
  | [ l ] -> check_str "kept" "s = 'not ! a comment'" (String.trim l.Source.text)
  | _ -> Alcotest.fail "expected one line"

let code_line_count () =
  let src = "a = 1\n! pure comment\n\nb = 2" in
  check_int "code lines" 2 (Source.count_code_lines src);
  check_int "physical" 4 (Source.count_physical_lines src)

(* --- Lexer ------------------------------------------------------------------- *)

let lex str = Lexer.tokenize str

let lex_idents_case_folded () =
  match lex "Foo_Bar BAZ" with
  | [ Lexer.Ident "foo_bar"; Lexer.Ident "baz" ] -> ()
  | ts -> Alcotest.failf "unexpected: %s" (String.concat " " (List.map Lexer.token_to_string ts))

let lex_numbers () =
  (match lex "42" with
  | [ Lexer.Inum 42 ] -> ()
  | _ -> Alcotest.fail "int");
  (match lex "1.5" with
  | [ Lexer.Rnum f ] -> Alcotest.(check (float 1e-12)) "1.5" 1.5 f
  | _ -> Alcotest.fail "real");
  (match lex "1.0e-3" with
  | [ Lexer.Rnum f ] -> Alcotest.(check (float 1e-12)) "exp" 0.001 f
  | _ -> Alcotest.fail "exponent");
  (match lex "2.5d0" with
  | [ Lexer.Rnum f ] -> Alcotest.(check (float 1e-12)) "d-exp" 2.5 f
  | _ -> Alcotest.fail "d exponent");
  (match lex "8.1328e-3_r8" with
  | [ Lexer.Rnum f ] -> Alcotest.(check (float 1e-12)) "kind suffix" 8.1328e-3 f
  | _ -> Alcotest.fail "kind suffix");
  match lex ".5" with
  | [ Lexer.Rnum f ] -> Alcotest.(check (float 1e-12)) "leading dot" 0.5 f
  | _ -> Alcotest.fail "leading dot"

let lex_dotops () =
  match lex "a .and. .not. b .or. .true." with
  | [
   Lexer.Ident "a"; Lexer.Dotop "and"; Lexer.Dotop "not"; Lexer.Ident "b";
   Lexer.Dotop "or"; Lexer.Dotop "true";
  ] ->
      ()
  | ts -> Alcotest.failf "unexpected: %s" (String.concat " " (List.map Lexer.token_to_string ts))

let lex_two_char_ops () =
  match lex "a ** b == c /= d <= e >= f => g :: h // i" with
  | toks ->
      let ops = List.filter_map (function Lexer.Op o -> Some o | _ -> None) toks in
      check_slist "ops" [ "**"; "=="; "/="; "<="; ">="; "=>"; "::"; "//" ] ops

let lex_number_vs_dotop () =
  (* "1." followed by "and" must not merge: `1 .and.` style *)
  match lex "x = 1 .and. y" with
  | [ Lexer.Ident "x"; Lexer.Op "="; Lexer.Inum 1; Lexer.Dotop "and"; Lexer.Ident "y" ] -> ()
  | ts -> Alcotest.failf "unexpected: %s" (String.concat " " (List.map Lexer.token_to_string ts))

let lex_string_literals () =
  match lex "s = 'hello world'" with
  | [ Lexer.Ident "s"; Lexer.Op "="; Lexer.Str "hello world" ] -> ()
  | _ -> Alcotest.fail "string literal"

let lex_rejects_garbage () =
  Alcotest.check_raises "bad char"
    (Lexer.Lex_error "unexpected character '#' in \"a # b\"") (fun () ->
      ignore (lex "a # b"))

(* --- Expression parsing -------------------------------------------------------- *)

open Ast

let pe = Parser.parse_expression

let expr_roundtrip_equal msg text =
  let e = pe text in
  let e' = pe (Pretty.expr_str e) in
  Alcotest.(check bool) msg true (e = e')

let parse_precedence () =
  (match pe "1 + 2 * 3" with
  | Ebin (Add, Eint 1, Ebin (Mul, Eint 2, Eint 3)) -> ()
  | _ -> Alcotest.fail "mul binds tighter");
  (match pe "2 ** 3 ** 2" with
  | Ebin (Pow, Eint 2, Ebin (Pow, Eint 3, Eint 2)) -> ()
  | _ -> Alcotest.fail "pow right assoc");
  (match pe "-x ** 2" with
  | Eun (Neg, Ebin (Pow, _, _)) -> ()
  | _ -> Alcotest.fail "unary minus looser than pow");
  match pe "a .or. b .and. c" with
  | Ebin (Or, _, Ebin (And, _, _)) -> ()
  | _ -> Alcotest.fail "and binds tighter than or"

let parse_comparisons () =
  (match pe "a <= b" with
  | Ebin (Le, _, _) -> ()
  | _ -> Alcotest.fail "<=");
  match pe "a .lt. b" with
  | Ebin (Lt, _, _) -> ()
  | _ -> Alcotest.fail ".lt."

let parse_designators () =
  (match pe "state%omega" with
  | Edesig (Dmember (Dname "state", "omega")) -> ()
  | _ -> Alcotest.fail "member");
  (match pe "elem(ie)%derived%omega_p" with
  | Edesig (Dmember (Dmember (Dindex (Dname "elem", [ _ ]), "derived"), "omega_p")) -> ()
  | _ -> Alcotest.fail "chain");
  match pe "a(i, j+1)" with
  | Edesig (Dindex (Dname "a", [ _; Ebin (Add, _, _) ])) -> ()
  | _ -> Alcotest.fail "2d index"

let parse_ranges () =
  (match pe "a(:)" with
  | Edesig (Dindex (Dname "a", [ Erange (None, None) ])) -> ()
  | _ -> Alcotest.fail "full range");
  match pe "a(1:n)" with
  | Edesig (Dindex (Dname "a", [ Erange (Some (Eint 1), Some _) ])) -> ()
  | _ -> Alcotest.fail "bounded range"

let canonical_names () =
  let d =
    match pe "elem(ie)%derived%omega_p" with
    | Edesig d -> d
    | _ -> Alcotest.fail "designator"
  in
  check_str "canonical" "omega_p" (Ast.designator_canonical d);
  check_str "base" "elem" (Ast.designator_base d)

let expr_identifiers_collects () =
  let e = pe "alpha(b(c, d) * e(f(g + h)))" in
  check_slist "idents" [ "alpha"; "b"; "c"; "d"; "e"; "f"; "g"; "h" ]
    (Ast.expr_identifiers e)

(* --- Statement parsing ----------------------------------------------------------- *)

let ps text = Parser.parse_statement text

let parse_assignment_stmt () =
  match (ps "x = y + 1").node with
  | Assign (Dname "x", Ebin (Add, _, _)) -> ()
  | _ -> Alcotest.fail "assignment"

let parse_call_stmt () =
  match (ps "call physics_update(state, dt)").node with
  | Call ("physics_update", [ _; _ ]) -> ()
  | _ -> Alcotest.fail "call"

let parse_one_line_if () =
  match (ps "if (x > 0) y = 1").node with
  | If ([ (Ebin (Gt, _, _), [ { node = Assign (Dname "y", Eint 1); _ } ]) ], []) -> ()
  | _ -> Alcotest.fail "one-line if"

let parse_tolerant_unparsed () =
  match (Parser.parse_statement ~strict:false "where (a > 0) a = 0").node with
  | Unparsed _ -> ()
  | _ -> Alcotest.fail "expected Unparsed"

let parse_strict_raises () =
  match ps "where (a > 0) a = 0" with
  | exception Parser.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected Parse_error"

(* --- Module parsing --------------------------------------------------------------- *)

let sample_module =
  {|
module wv_saturation
  use shr_kind_mod, only: r8 => shr_kind_r8
  use physconst
  implicit none
  real(r8), parameter :: tboil = 373.16_r8
  real(r8) :: table(100)
  type svp_state
    real(r8) :: last_t
    integer :: calls
  end type svp_state
  interface svp
    module procedure svp_water, svp_ice
  end interface
contains
  elemental function goffgratch_svp(t) result(es)
    real(r8), intent(in) :: t
    real(r8) :: es
    real(r8) :: ps, e1
    ps = 1013.246_r8
    e1 = 11.344_r8 * (1.0_r8 - t / tboil)
    es = ps * e1 + 8.1328e-3_r8 * t
    if (es < 0.0_r8) then
      es = 0.0_r8
    end if
  end function goffgratch_svp

  subroutine update_table(n)
    integer, intent(in) :: n
    integer :: i
    do i = 1, n
      table(i) = goffgratch_svp(270.0_r8 + i)
    end do
  end subroutine update_table

  function svp_water(t) result(es)
    real(r8), intent(in) :: t
    real(r8) :: es
    es = goffgratch_svp(t)
  end function svp_water

  function svp_ice(t) result(es)
    real(r8), intent(in) :: t
    real(r8) :: es
    es = goffgratch_svp(t) * 0.9_r8
  end function svp_ice
end module wv_saturation
|}

let parse_sample_module () =
  match Parser.parse_file ~strict:true ~file:"wv_saturation.F90" sample_module with
  | [ m ] ->
      check_str "name" "wv_saturation" m.m_name;
      check_int "uses" 2 (List.length m.m_uses);
      (match m.m_uses with
      | [ u1; u2 ] ->
          check_str "use module" "shr_kind_mod" u1.u_module;
          (match u1.u_only with
          | Some [ ("r8", "shr_kind_r8") ] -> ()
          | _ -> Alcotest.fail "rename in only list");
          check_bool "use all" true (u2.u_only = None)
      | _ -> Alcotest.fail "uses");
      check_int "types" 1 (List.length m.m_types);
      check_int "type fields" 2 (List.length (List.hd m.m_types).t_fields);
      check_int "module decls" 2 (List.length m.m_decls);
      check_bool "tboil is parameter" true
        (List.exists (fun d -> d.d_name = "tboil" && d.d_param) m.m_decls);
      check_bool "table is array" true
        (List.exists (fun d -> d.d_name = "table" && d.d_dims <> []) m.m_decls);
      check_int "interfaces" 1 (List.length m.m_interfaces);
      check_slist "interface procs" [ "svp_water"; "svp_ice" ]
        (List.hd m.m_interfaces).i_procedures;
      check_int "subprograms" 4 (List.length m.m_subprograms);
      let f = Option.get (Ast.find_subprogram m "goffgratch_svp") in
      check_bool "elemental" true f.s_elemental;
      check_str "result" "es" (Ast.function_result_name f);
      check_slist "args" [ "t" ] f.s_args;
      check_int "local decls" 4 (List.length f.s_decls);
      let upd = Option.get (Ast.find_subprogram m "update_table") in
      (match upd.s_body with
      | [ { node = Do { var = "i"; _ }; _ } ] -> ()
      | _ -> Alcotest.fail "do loop body")
  | _ -> Alcotest.fail "expected one module"

let nested_control_flow () =
  let src =
    {|
module flow
contains
  subroutine s(a, b, n)
    real(r8), intent(inout) :: a(n)
    real(r8), intent(in) :: b
    integer, intent(in) :: n
    integer :: i, j
    do i = 1, n
      if (a(i) > b) then
        a(i) = b
      else if (a(i) < 0.0_r8) then
        do j = 1, 3
          a(i) = a(i) * 0.5_r8
        end do
      else
        a(i) = 0.0_r8
      end if
    end do
    do while (b > 0.0_r8)
      exit
    end do
  end subroutine s
end module flow
|}
  in
  match Parser.parse_file ~strict:true ~file:"flow.F90" src with
  | [ m ] -> (
      let s = Option.get (Ast.find_subprogram m "s") in
      match s.s_body with
      | [ { node = Do { body = [ { node = If (branches, els); _ } ]; _ }; _ };
          { node = Do_while (_, [ { node = Exit_loop; _ } ]); _ } ] ->
          check_int "branches" 2 (List.length branches);
          check_int "else" 1 (List.length els)
      | _ -> Alcotest.fail "unexpected structure")
  | _ -> Alcotest.fail "one module"

let multiple_modules_one_file () =
  let src = "module a\ncontains\nsubroutine s()\nx = 1\nend subroutine\nend module a\nmodule b\nend module b" in
  let mods = Parser.parse_file ~strict:false ~file:"two.F90" src in
  check_slist "names" [ "a"; "b" ] (List.map (fun m -> m.m_name) mods)

let tolerant_mode_keeps_unparsed () =
  let src =
    "module weird\ncontains\nsubroutine s()\nx = 1\nwhere (q > 0) q = 0\ny = 2\nend subroutine\nend module weird"
  in
  match Parser.parse_file ~file:"weird.F90" src with
  | [ m ] -> (
      let s = List.hd m.m_subprograms in
      match s.s_body with
      | [ { node = Assign _; _ }; { node = Unparsed raw; _ }; { node = Assign _; _ } ] ->
          check_bool "raw kept" true
            (String.length raw >= 5 && String.sub raw 0 5 = "where")
      | _ -> Alcotest.fail "expected unparsed in middle")
  | _ -> Alcotest.fail "one module"

let line_numbers_recorded () =
  match Parser.parse_file ~strict:true ~file:"m.F90" sample_module with
  | [ m ] ->
      let f = Option.get (Ast.find_subprogram m "goffgratch_svp") in
      (match f.s_body with
      | st :: _ -> check_bool "line > 0" true (st.line > 0)
      | [] -> Alcotest.fail "body");
      check_bool "sub line > module line" true (f.s_line > m.m_line)
  | _ -> Alcotest.fail "one module"

let long_statement_parses () =
  (* the paper mentions a 3500-character CESM statement; build one *)
  let terms = List.init 400 (fun i -> Printf.sprintf "x%d * c(%d)" i i) in
  let text = "acc = " ^ String.concat " + " terms in
  check_bool "long" true (String.length text > 3500);
  match (ps text).node with
  | Assign (Dname "acc", _) -> ()
  | _ -> Alcotest.fail "long assignment"

(* --- Pretty round trip ------------------------------------------------------------- *)

let pretty_roundtrip_module () =
  match Parser.parse_file ~strict:true ~file:"m.F90" sample_module with
  | [ m ] -> (
      let text = Pretty.module_to_string m in
      match Parser.parse_file ~strict:true ~file:"m.F90" text with
      | [ m' ] ->
          check_str "name" m.m_name m'.m_name;
          check_int "same subprograms" (List.length m.m_subprograms)
            (List.length m'.m_subprograms);
          check_int "same decls" (List.length m.m_decls) (List.length m'.m_decls);
          (* statement structure identical module line numbers *)
          let strip_sub (s : subprogram) =
            (s.s_name, s.s_args, List.map (fun d -> d.d_name) s.s_decls,
             Ast.count_stmts s.s_body)
          in
          Alcotest.(check bool) "subprogram shapes" true
            (List.map strip_sub m.m_subprograms = List.map strip_sub m'.m_subprograms)
      | _ -> Alcotest.fail "reparse failed")
  | _ -> Alcotest.fail "one module"

let pretty_expr_roundtrips () =
  List.iter
    (fun t -> expr_roundtrip_equal t t)
    [
      "1 + 2 * 3";
      "a ** b ** c";
      "-x ** 2";
      "a .and. b .or. .not. c";
      "state%omega(i, k) + dp(i) / g";
      "min(a, max(b, c))";
      "(a + b) * (c - d)";
      "x <= y .and. z /= w";
    ]

(* --- Relaxed fallback ------------------------------------------------------------- *)

let relaxed_scrape () =
  check_slist "idents" [ "qc"; "i"; "k"; "berg"; "dum" ]
    (Relaxed.scrape_identifiers "qc(i,k) = qc(i,k) - berg * 1.5e-3_r8 + dum");
  check_slist "skips strings" [ "x"; "y" ]
    (Relaxed.scrape_identifiers "x = 'name with spaces' // y");
  check_slist "skips keywords" [ "a"; "b" ]
    (Relaxed.scrape_identifiers "if (a > 0) b = .true.")

let relaxed_split () =
  match Relaxed.split_assignment "state%q(i,k) = state%q(i,k) + dqdt * dt" with
  | Some r ->
      check_str "base" "state" r.Relaxed.lhs_base;
      check_str "canonical" "q" r.Relaxed.lhs_canonical;
      check_slist "rhs" [ "state"; "q"; "i"; "k"; "dqdt"; "dt" ] r.Relaxed.rhs_identifiers
  | None -> Alcotest.fail "expected split"

let relaxed_split_respects_parens () =
  (* '=' inside parens (array constructor-ish) is not the assignment '=' *)
  match Relaxed.split_assignment "a(f(x) + 1) = b" with
  | Some r -> check_str "base" "a" r.Relaxed.lhs_base
  | None -> Alcotest.fail "expected split"

let relaxed_split_none_for_conditions () =
  check_bool "== is not assignment" true (Relaxed.split_assignment "a == b" = None);
  check_bool "call is not assignment" true (Relaxed.split_assignment "call f(a, b)" = None)

let relaxed_deep_derived_type () =
  match Relaxed.split_assignment "elem(ie)%derived%omega_p(i,k) = wrk + 1" with
  | Some r ->
      check_str "canonical" "omega_p" r.Relaxed.lhs_canonical;
      check_str "base" "elem" r.Relaxed.lhs_base
  | None -> Alcotest.fail "expected split"

(* --- qcheck properties -------------------------------------------------------------- *)

(* random expression generator *)
let rec gen_expr depth =
  let open QCheck2.Gen in
  if depth = 0 then
    oneof
      [
        map (fun i -> Eint i) (QCheck2.Gen.int_range 0 99);
        map (fun f -> Enum (Float.abs (Float.of_int (int_of_float (f *. 100.))) /. 7.0)) (float_bound_inclusive 10.0);
        oneofl [ Edesig (Dname "x"); Edesig (Dname "y"); Edesig (Dname "dum") ];
      ]
  else
    let sub = gen_expr (depth - 1) in
    oneof
      [
        map2 (fun a b -> Ebin (Add, a, b)) sub sub;
        map2 (fun a b -> Ebin (Mul, a, b)) sub sub;
        map2 (fun a b -> Ebin (Sub, a, b)) sub sub;
        map2 (fun a b -> Ebin (Div, a, b)) sub sub;
        map (fun a -> Eun (Neg, a)) sub;
        map (fun a -> Edesig (Dindex (Dname "arr", [ a ]))) sub;
        sub;
      ]

let prop_pretty_parse_roundtrip =
  QCheck2.Test.make ~name:"parse (pretty e) = e" ~count:300 (gen_expr 4) (fun e ->
      Parser.parse_expression (Pretty.expr_str e) = e)

let prop_scrape_subset_of_ast_idents =
  QCheck2.Test.make ~name:"relaxed scrape finds the AST identifiers" ~count:200
    (gen_expr 3) (fun e ->
      let text = "lhs = " ^ Pretty.expr_str e in
      match Relaxed.split_assignment text with
      | None -> false
      | Some r ->
          let ast_ids = Ast.expr_identifiers e in
          List.for_all (fun id -> List.mem id r.Relaxed.rhs_identifiers) ast_ids)

let prop_logical_lines_nonempty =
  QCheck2.Test.make ~name:"logical lines are trimmed and non-empty" ~count:200
    QCheck2.Gen.(small_list (oneofl [ "a = 1"; ""; "! c"; "b = 2 + &"; "3" ]))
    (fun frags ->
      let src = String.concat "\n" frags in
      List.for_all
        (fun l -> String.trim l.Source.text = l.Source.text && l.Source.text <> "")
        (Source.logical_lines src))

(* random statement generator for the statement/module-level round trip.
   Restricted to the printable subset: no Unparsed (raw text is free-form),
   and line numbers are stripped before comparing. *)
let mk node = { line = 0; node }

let rec gen_stmt depth =
  let open QCheck2.Gen in
  let assign =
    map2
      (fun d e -> mk (Assign (d, e)))
      (oneof
         [
           oneofl [ Dname "x"; Dname "y" ];
           map (fun e -> Dindex (Dname "arr", [ e ])) (gen_expr 1);
         ])
      (gen_expr 2)
  in
  if depth = 0 then assign
  else
    let body = list_size (int_range 1 3) (gen_stmt (depth - 1)) in
    oneof
      [
        assign;
        map2 (fun c b -> mk (If ([ (c, b) ], []))) (gen_expr 1) body;
        map3 (fun c b e -> mk (If ([ (c, b) ], e))) (gen_expr 1) body body;
        map3
          (fun lo hi b -> mk (Do { var = "i"; lo; hi; step = None; body = b }))
          (gen_expr 1) (gen_expr 1) body;
        map2 (fun c b -> mk (Do_while (c, b))) (gen_expr 1) body;
        map (fun args -> mk (Call ("update", args))) (list_size (int_range 1 2) (gen_expr 1));
        return (mk Return);
      ]

let rec strip_stmt st =
  let node =
    match st.node with
    | If (bs, els) ->
        If
          ( List.map (fun (c, b) -> (c, List.map strip_stmt b)) bs,
            List.map strip_stmt els )
    | Do d -> Do { d with body = List.map strip_stmt d.body }
    | Do_while (c, b) -> Do_while (c, List.map strip_stmt b)
    | Select (s, cs, d) ->
        Select
          ( s,
            List.map (fun (v, b) -> (v, List.map strip_stmt b)) cs,
            List.map strip_stmt d )
    | n -> n
  in
  { line = 0; node }

let prop_module_roundtrip =
  QCheck2.Test.make ~name:"pretty module re-parses to an equal AST" ~count:200
    QCheck2.Gen.(list_size (int_range 1 4) (gen_stmt 2))
    (fun body ->
      let decl name dims =
        {
          d_name = name;
          d_type = Treal;
          d_dims = dims;
          d_init = None;
          d_param = false;
          d_intent = None;
          d_line = 0;
        }
      in
      let sub =
        {
          s_name = "s";
          s_kind = Subroutine;
          s_args = [ "x"; "y" ];
          s_result = None;
          s_elemental = false;
          s_decls =
            [
              decl "x" [];
              decl "y" [];
              decl "arr" [ Eint 4 ];
              { (decl "i" []) with d_type = Tinteger };
              decl "dum" [];
            ];
          s_body = body;
          s_line = 0;
        }
      in
      let m =
        {
          m_name = "m";
          m_file = "gen.F90";
          m_uses = [];
          m_types = [];
          m_decls = [];
          m_interfaces = [];
          m_subprograms = [ sub ];
          m_line = 0;
        }
      in
      match Parser.parse_file ~strict:true ~file:"gen.F90" (Pretty.module_to_string m) with
      | [ m' ] -> (
          match m'.m_subprograms with
          | [ sub' ] ->
              sub'.s_name = "s"
              && sub'.s_args = sub.s_args
              && List.map (fun d -> d.d_name) sub'.s_decls
                 = List.map (fun d -> d.d_name) sub.s_decls
              && List.map strip_stmt sub'.s_body = List.map strip_stmt body
          | _ -> false)
      | _ -> false)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_pretty_parse_roundtrip;
      prop_scrape_subset_of_ast_idents;
      prop_logical_lines_nonempty;
      prop_module_roundtrip;
    ]

let () =
  Alcotest.run "rca_fortran"
    [
      ( "source",
        [
          Alcotest.test_case "logical lines" `Quick logical_lines_basic;
          Alcotest.test_case "continuation" `Quick continuation_joining;
          Alcotest.test_case "leading ampersand" `Quick continuation_leading_ampersand;
          Alcotest.test_case "comment in string" `Quick comment_inside_string_kept;
          Alcotest.test_case "code line count" `Quick code_line_count;
        ] );
      ( "lexer",
        [
          Alcotest.test_case "case folding" `Quick lex_idents_case_folded;
          Alcotest.test_case "numbers" `Quick lex_numbers;
          Alcotest.test_case "dot operators" `Quick lex_dotops;
          Alcotest.test_case "two-char ops" `Quick lex_two_char_ops;
          Alcotest.test_case "number vs dotop" `Quick lex_number_vs_dotop;
          Alcotest.test_case "strings" `Quick lex_string_literals;
          Alcotest.test_case "garbage rejected" `Quick lex_rejects_garbage;
        ] );
      ( "expressions",
        [
          Alcotest.test_case "precedence" `Quick parse_precedence;
          Alcotest.test_case "comparisons" `Quick parse_comparisons;
          Alcotest.test_case "designators" `Quick parse_designators;
          Alcotest.test_case "ranges" `Quick parse_ranges;
          Alcotest.test_case "canonical names" `Quick canonical_names;
          Alcotest.test_case "identifiers" `Quick expr_identifiers_collects;
        ] );
      ( "statements",
        [
          Alcotest.test_case "assignment" `Quick parse_assignment_stmt;
          Alcotest.test_case "call" `Quick parse_call_stmt;
          Alcotest.test_case "one-line if" `Quick parse_one_line_if;
          Alcotest.test_case "tolerant unparsed" `Quick parse_tolerant_unparsed;
          Alcotest.test_case "strict raises" `Quick parse_strict_raises;
          Alcotest.test_case "long statement" `Quick long_statement_parses;
        ] );
      ( "modules",
        [
          Alcotest.test_case "sample module" `Quick parse_sample_module;
          Alcotest.test_case "nested control flow" `Quick nested_control_flow;
          Alcotest.test_case "two modules" `Quick multiple_modules_one_file;
          Alcotest.test_case "tolerant keeps unparsed" `Quick tolerant_mode_keeps_unparsed;
          Alcotest.test_case "line numbers" `Quick line_numbers_recorded;
        ] );
      ( "pretty",
        [
          Alcotest.test_case "module round trip" `Quick pretty_roundtrip_module;
          Alcotest.test_case "expr round trips" `Quick pretty_expr_roundtrips;
        ] );
      ( "relaxed",
        [
          Alcotest.test_case "scrape" `Quick relaxed_scrape;
          Alcotest.test_case "split" `Quick relaxed_split;
          Alcotest.test_case "parens" `Quick relaxed_split_respects_parens;
          Alcotest.test_case "non-assignments" `Quick relaxed_split_none_for_conditions;
          Alcotest.test_case "derived type" `Quick relaxed_deep_derived_type;
        ] );
      ("properties", qcheck_cases);
    ]
