(* Differential lockdown of the CSR graph kernel and the
   component-incremental Girvan-Newman engine.

   The incremental engine must be *indistinguishable* from the reference
   (mutable digraph + full recomputation per removal): identical removal
   sequences and identical partitions, on every graph shape the
   generators can produce — multi-component, self-loops, edgeless,
   empty — sequentially and under 2/4-domain pools, exact and
   source-sampled.  The CSR Brandes kernel is held to a stronger
   standard: bitwise equality with the hashtable reference path,
   sequentially and at every pool size (same chunk structure, same tree
   reduction, same per-edge summation order).  The eigenvector gather is
   likewise checked bitwise against an inline copy of the historical
   edge-scatter sweep. *)

open Rca_graph

let pool2 = Pool.create 2
let pool4 = Pool.create 4
let () = at_exit (fun () -> Pool.shutdown pool2; Pool.shutdown pool4)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- comparison helpers ------------------------------------------------------ *)

(* Nonzero-score edge assoc, sorted by key: the canonical form shared by
   the hashtable path (which only stores touched arcs) and the CSR path
   (dense array, zeros skipped). *)
let table_assoc tbl =
  Hashtbl.fold (fun k v acc -> if v <> 0.0 then (k, v) :: acc else acc) tbl []
  |> List.sort compare

let csr_edge_assoc csr (acc : Betweenness.csr_acc) =
  let out = ref [] in
  Csr.iter_arcs
    (fun i u v ->
      let s = acc.Betweenness.csr_edge_bc.(i) in
      if s <> 0.0 then out := ((u, v), s) :: !out)
    csr;
  List.sort compare !out

let same_step (a : Community.gn_step) (b : Community.gn_step) =
  a.Community.removed_edges = b.Community.removed_edges
  && a.Community.partition.Community.labels = b.Community.partition.Community.labels
  && a.Community.partition.Community.communities
     = b.Community.partition.Community.communities

(* --- CSR construction unit tests --------------------------------------------- *)

let fixture_graph () =
  (* reciprocal pair, a self-loop, an isolated node, parallel-free *)
  let g = Digraph.of_edges ~n:6 [ (0, 1); (1, 0); (1, 2); (2, 3); (3, 3); (0, 2) ] in
  g

let csr_mirrors_digraph () =
  let g = fixture_graph () in
  let csr = Csr.of_digraph g in
  check_int "n" (Digraph.n g) csr.Csr.n;
  check_int "m" (Digraph.m g) csr.Csr.m;
  (* arc ids are exactly Digraph.iter_edges order *)
  let edges = ref [] in
  Digraph.iter_edges (fun u v -> edges := (u, v) :: !edges) g;
  let edges = Array.of_list (List.rev !edges) in
  check_int "arc count" (Array.length edges) csr.Csr.m;
  Array.iteri
    (fun i (u, v) ->
      check_int "src slot" u csr.Csr.src.(i);
      check_int "col slot" v csr.Csr.col.(i))
    edges;
  (* iter_arcs presents the same sequence *)
  let seen = ref [] in
  Csr.iter_arcs (fun i u v -> seen := (i, u, v) :: !seen) csr;
  let seen = List.rev !seen in
  List.iteri
    (fun i (id, u, v) ->
      check_int "iter id" i id;
      let eu, ev = edges.(i) in
      check_int "iter src" eu u;
      check_int "iter col" ev v)
    seen;
  (* row offsets are consistent with out-degrees and slot sources *)
  check_int "row length" (csr.Csr.n + 1) (Array.length csr.Csr.row);
  check_int "row end" csr.Csr.m csr.Csr.row.(csr.Csr.n);
  Digraph.iter_nodes
    (fun u ->
      check_int "row width = out degree"
        (Digraph.out_degree g u)
        (csr.Csr.row.(u + 1) - csr.Csr.row.(u));
      check_int "Csr.out_degree" (Digraph.out_degree g u) (Csr.out_degree csr u);
      for i = csr.Csr.row.(u) to csr.Csr.row.(u + 1) - 1 do
        check_int "slot belongs to its row" u csr.Csr.src.(i)
      done)
    g;
  (* rows list successors in adjacency-list order *)
  Digraph.iter_nodes
    (fun u ->
      let csr_row =
        Array.to_list (Array.sub csr.Csr.col csr.Csr.row.(u)
                         (csr.Csr.row.(u + 1) - csr.Csr.row.(u)))
      in
      Alcotest.(check (list int)) "row = succ list" (Digraph.succ g u) csr_row)
    g

let csr_rev_and_arc_id () =
  let g = fixture_graph () in
  let csr = Csr.of_digraph g in
  Csr.iter_arcs
    (fun i u v ->
      check_int "arc_id finds each arc" i (Csr.arc_id csr u v);
      let r = csr.Csr.rev.(i) in
      if u = v then check_int "self-loop is its own reverse" i r
      else if Digraph.mem_edge g v u then begin
        check_bool "reverse present" true (r >= 0);
        check_int "rev src" v csr.Csr.src.(r);
        check_int "rev col" u csr.Csr.col.(r);
        check_int "rev is involutive" i csr.Csr.rev.(r)
      end
      else check_int "no reverse arc" (-1) r)
    csr;
  check_int "absent arc" (-1) (Csr.arc_id csr 0 3);
  check_int "absent arc (isolated)" (-1) (Csr.arc_id csr 4 0)

let csr_sub_matches_induced () =
  let g = fixture_graph () in
  (* duplicates must dedup to first occurrence, like induced_subgraph *)
  let nodes = [ 3; 1; 3; 0; 2 ] in
  let csr, to_parent = Csr.of_digraph_sub g nodes in
  let sub = Digraph.induced_subgraph g nodes in
  let direct = Csr.of_digraph sub.Digraph.graph in
  check_int "sub n" direct.Csr.n csr.Csr.n;
  check_int "sub m" direct.Csr.m csr.Csr.m;
  Alcotest.(check (array int)) "sub row" direct.Csr.row csr.Csr.row;
  Alcotest.(check (array int)) "sub col" direct.Csr.col csr.Csr.col;
  Alcotest.(check (array int)) "sub src" direct.Csr.src csr.Csr.src;
  Alcotest.(check (array int)) "sub rev" direct.Csr.rev csr.Csr.rev;
  Alcotest.(check (array int)) "to_parent map" sub.Digraph.to_parent to_parent

let csr_transpose_reverses_arcs () =
  let g = fixture_graph () in
  let csr = Csr.of_digraph g in
  let t = Csr.transpose csr in
  check_int "same n" csr.Csr.n t.Csr.n;
  check_int "same m" csr.Csr.m t.Csr.m;
  (* same arc multiset, reversed *)
  let arcs c =
    let out = ref [] in
    Csr.iter_arcs (fun _ u v -> out := (u, v) :: !out) c;
    List.sort compare !out
  in
  Alcotest.(check (list (pair int int))) "arcs reversed"
    (List.sort compare (List.map (fun (u, v) -> (v, u)) (arcs csr)))
    (arcs t);
  (* transposed rows are in ascending-source order: the row for [v]
     lists in-neighbours exactly as the sequential edge scatter reaches
     them (global iteration = ascending arc id = ascending source
     here) *)
  Digraph.iter_nodes
    (fun v ->
      let sources =
        Array.to_list (Array.sub t.Csr.col t.Csr.row.(v) (t.Csr.row.(v + 1) - t.Csr.row.(v)))
      in
      Alcotest.(check (list int)) "row sorted ascending"
        (List.sort compare sources) sources)
    g;
  (* double transpose restores the original arc multiset *)
  Alcotest.(check (list (pair int int))) "involution" (arcs csr) (arcs (Csr.transpose t))

(* --- alive-mask semantics ------------------------------------------------------ *)

(* Masking arcs out of the CSR must equal physically removing the edges
   from the digraph — bitwise, because the surviving adjacency order is
   unchanged in both representations. *)
let alive_mask_equals_removal () =
  let g = Digraph.to_undirected (Gen.gnm ~seed:7 ~n:14 ~m:30) in
  let csr = Csr.of_digraph g in
  let alive = Bytes.make csr.Csr.m '\001' in
  let kill u v =
    let i = Csr.arc_id csr u v in
    check_bool "arc present" true (i >= 0);
    Bytes.set alive i '\000'
  in
  (* pick the first two undirected edges and kill both directions *)
  let picked = ref [] in
  (try
     Digraph.iter_edges
       (fun u v ->
         if u < v && List.length !picked < 2 then picked := (u, v) :: !picked
         else if List.length !picked >= 2 then raise Exit)
       g
   with Exit -> ());
  (* Rebuild g with identical stored adjacency order (Digraph.copy
     prepends and so *reverses* succ lists, which perturbs float
     summation order): add_edge prepends, so feeding edges in reverse
     iteration order restores the original lists.  remove_edge filters
     in place and keeps the order of the survivors. *)
  let rev_edges = ref [] in
  Digraph.iter_edges (fun u v -> rev_edges := (u, v) :: !rev_edges) g;
  let g' = Digraph.of_edges ~n:(Digraph.n g) !rev_edges in
  List.iter
    (fun (u, v) ->
      kill u v; kill v u;
      Digraph.remove_edge g' u v;
      Digraph.remove_edge g' v u)
    !picked;
  let masked = Betweenness.csr_compute ~alive csr in
  let ref_acc = Betweenness.compute g' in
  check_bool "node scores bitwise" true
    (masked.Betweenness.csr_node_bc = ref_acc.Betweenness.node_bc);
  check_bool "edge scores bitwise" true
    (csr_edge_assoc csr masked = table_assoc ref_acc.Betweenness.edge_bc)

(* --- argmax tie-breaking -------------------------------------------------------- *)

let argmax_tie_breaking () =
  let run scores =
    Betweenness.argmax_edge (fun f ->
        List.iteri (fun i s -> f i (i + 1) s) scores)
  in
  Alcotest.(check (option (triple int int (float 0.0)))) "empty" None (run []);
  (* a sub-margin increment is a tie: the earlier edge keeps the crown *)
  Alcotest.(check (option (triple int int (float 0.0)))) "near-tie keeps incumbent"
    (Some (0, 1, 1.0))
    (run [ 1.0; 1.0 +. 1e-13; 1.0 -. 1e-13 ]);
  (* a real improvement takes over; later near-ties still lose *)
  Alcotest.(check (option (triple int int (float 0.0)))) "clear winner"
    (Some (2, 3, 2.0))
    (run [ 1.0; 1.0 +. 1e-13; 2.0; 2.0 +. 1e-13 ]);
  (* all-zero scores: the first edge wins (beats needs a strict margin) *)
  Alcotest.(check (option (triple int int (float 0.0)))) "all zero"
    (Some (0, 1, 0.0))
    (run [ 0.0; 0.0; 0.0 ])

let max_edge_on_path () =
  (* directed chain 0->1->2->3: arc (1,2) carries the most shortest
     paths (0->2, 0->3, 1->2, 1->3) *)
  let g = Digraph.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  match Betweenness.max_edge g with
  | Some (1, 2, s) -> Alcotest.(check (float 1e-9)) "score" 4.0 s
  | other ->
      Alcotest.failf "expected arc (1,2), got %s"
        (match other with
        | None -> "None"
        | Some (u, v, s) -> Printf.sprintf "(%d,%d,%g)" u v s)

(* --- Girvan-Newman edge-case units --------------------------------------------- *)

let gn_engines_agree_on g =
  check_bool "step" true
    (same_step (Community.girvan_newman_step g) (Community.girvan_newman_step_reference g));
  check_bool "target" true
    (same_step
       (Community.girvan_newman ~target:2 g)
       (Community.girvan_newman_reference ~target:2 g))

let gn_empty_graph () = gn_engines_agree_on (Digraph.create ())
let gn_edgeless_graph () = gn_engines_agree_on (Digraph.of_edges ~n:5 [])

let gn_self_loops_only () =
  let g = Digraph.of_edges ~n:3 [ (0, 0); (2, 2) ] in
  gn_engines_agree_on g

let gn_single_edge () =
  let g = Digraph.of_edges ~n:2 [ (0, 1) ] in
  let step = Community.girvan_newman_step g in
  check_int "splits into 2" 2 (Community.community_count step.Community.partition);
  Alcotest.(check (list (pair int int))) "cut the only edge" [ (0, 1) ]
    step.Community.removed_edges;
  gn_engines_agree_on g

let gn_bridge_and_budget () =
  let g = Gen.two_clusters ~seed:3 ~size:8 ~p_intra:0.5 ~bridges:1 in
  gn_engines_agree_on g;
  (* a removal budget of 1 must stop both engines at the same place *)
  let a = Community.girvan_newman_step ~max_removals:1 g in
  let b = Community.girvan_newman_step_reference ~max_removals:1 g in
  check_bool "budget respected identically" true (same_step a b);
  check_bool "at most one removal" true (List.length a.Community.removed_edges <= 1)

(* --- generators ----------------------------------------------------------------- *)

(* Random digraphs: 1-3 disjoint G(n,m) blobs (multi-component coverage
   for the per-component invalidation logic) plus optional self-loops;
   blobs with m = 0 give edgeless components. *)
let graph_gen =
  QCheck2.Gen.(
    let* blobs = list_size (int_range 1 3) (pair (int_range 2 14) (int_range 0 28)) in
    let* seed = int_range 0 1_000_000 in
    let* loops = list_size (int_range 0 3) (int_range 0 10_000) in
    return
      (let g = Digraph.create () in
       let off = ref 0 in
       List.iteri
         (fun i (bn, bm) ->
           let b = Gen.gnm ~seed:(seed + (31 * i)) ~n:bn ~m:bm in
           Digraph.ensure_node g (!off + bn - 1);
           Digraph.iter_edges (fun u v -> Digraph.add_edge g (!off + u) (!off + v)) b;
           off := !off + bn)
         blobs;
       let n = Digraph.n g in
       List.iter (fun l -> Digraph.add_edge g (l mod n) (l mod n)) loops;
       g))

let pools = [ ("2 domains", pool2); ("4 domains", pool4) ]

(* --- incremental G-N = reference G-N -------------------------------------------- *)

let prop_gn_step_differential =
  QCheck2.Test.make ~name:"incremental G-N step = reference (seq + pools)" ~count:35
    graph_gen (fun g ->
      let seq_ref = Community.girvan_newman_step_reference g in
      same_step (Community.girvan_newman_step g) seq_ref
      && List.for_all
           (fun (_, pool) ->
             same_step (Community.girvan_newman_step ~pool g)
               (Community.girvan_newman_step_reference ~pool g))
           pools)

let prop_gn_target_differential =
  QCheck2.Test.make ~name:"incremental G-N target:3 = reference (seq + pools)" ~count:25
    graph_gen (fun g ->
      let seq_ref = Community.girvan_newman_reference ~target:3 g in
      same_step (Community.girvan_newman ~target:3 g) seq_ref
      && List.for_all
           (fun (_, pool) ->
             same_step
               (Community.girvan_newman ~target:3 ~pool g)
               (Community.girvan_newman_reference ~target:3 ~pool g))
           pools)

let prop_gn_approx_differential =
  QCheck2.Test.make ~name:"incremental sampled G-N = reference (approx:6)" ~count:25
    graph_gen (fun g ->
      same_step
        (Community.girvan_newman_step ~approx:6 g)
        (Community.girvan_newman_step_reference ~approx:6 g)
      && same_step
           (Community.girvan_newman_step ~approx:6 ~pool:pool2 g)
           (Community.girvan_newman_step_reference ~approx:6 ~pool:pool2 g))

(* --- CSR Brandes = hashtable Brandes -------------------------------------------- *)

let prop_csr_brandes_bitwise_seq =
  QCheck2.Test.make ~name:"CSR Brandes = hashtable Brandes (bitwise, seq)" ~count:50
    graph_gen (fun g ->
      let csr = Csr.of_digraph g in
      let a = Betweenness.csr_compute csr in
      let b = Betweenness.compute g in
      a.Betweenness.csr_node_bc = b.Betweenness.node_bc
      && csr_edge_assoc csr a = table_assoc b.Betweenness.edge_bc)

let prop_csr_brandes_bitwise_pool =
  QCheck2.Test.make ~name:"CSR Brandes = hashtable Brandes (bitwise, pools)" ~count:35
    graph_gen (fun g ->
      let csr = Csr.of_digraph g in
      List.for_all
        (fun (_, pool) ->
          let a = Betweenness.csr_compute ~pool csr in
          let b = Betweenness.compute ~pool g in
          a.Betweenness.csr_node_bc = b.Betweenness.node_bc
          && csr_edge_assoc csr a = table_assoc b.Betweenness.edge_bc)
        pools
      (* and the CSR path itself is pool-size independent *)
      && (Betweenness.csr_compute ~pool:pool2 csr).Betweenness.csr_node_bc
         = (Betweenness.csr_compute ~pool:pool4 csr).Betweenness.csr_node_bc)

let prop_csr_sources_restriction =
  QCheck2.Test.make ~name:"CSR source-restricted Brandes = hashtable (bitwise)" ~count:40
    graph_gen (fun g ->
      let csr = Csr.of_digraph g in
      let n = Digraph.n g in
      (* every other node as BFS source, like sampled estimation does *)
      let sources =
        Array.of_list (List.filter (fun v -> v mod 2 = 0) (List.init n Fun.id))
      in
      let a = Betweenness.csr_compute_sources csr sources in
      let b = Betweenness.compute_sources g sources in
      a.Betweenness.csr_node_bc = b.Betweenness.node_bc
      && csr_edge_assoc csr a = table_assoc b.Betweenness.edge_bc)

(* --- eigenvector gather = historical scatter ------------------------------------ *)

(* Inline copy of the pre-CSR edge-scatter sweep; the gather over the
   (transposed) CSR must reproduce it bitwise, because row order equals
   scatter arrival order. *)
let eigenvector_scatter ?(direction = Centrality.In) ?(max_iter = 200) ?(tol = 1e-10) g =
  let n = Digraph.n g in
  if n = 0 then [||]
  else begin
    let l2_normalize x =
      let s = sqrt (Array.fold_left (fun a v -> a +. (v *. v)) 0.0 x) in
      if s > 0.0 then Array.map (fun v -> v /. s) x else x
    in
    let x = Array.make n (1.0 /. float_of_int n) in
    let x' = Array.make n 0.0 in
    let rec iterate k x x' =
      if k = 0 then x
      else begin
        Array.blit x 0 x' 0 n;
        Digraph.iter_edges
          (fun u v ->
            match direction with
            | Centrality.In -> x'.(v) <- x'.(v) +. x.(u)
            | Centrality.Out -> x'.(u) <- x'.(u) +. x.(v))
          g;
        let x'' = l2_normalize x' in
        let delta = ref 0.0 in
        for i = 0 to n - 1 do
          delta := !delta +. abs_float (x''.(i) -. x.(i))
        done;
        if !delta < tol *. float_of_int n then x''
        else begin
          Array.blit x'' 0 x 0 n;
          iterate (k - 1) x x'
        end
      end
    in
    iterate max_iter x x'
  end

let prop_eigenvector_gather_matches_scatter =
  QCheck2.Test.make ~name:"eigenvector CSR gather = edge scatter (bitwise)" ~count:40
    graph_gen (fun g ->
      Centrality.eigenvector ~direction:Centrality.In g
        = eigenvector_scatter ~direction:Centrality.In g
      && Centrality.eigenvector ~direction:Centrality.Out g
         = eigenvector_scatter ~direction:Centrality.Out g)

let prop_eigenvector_pool_bitwise =
  QCheck2.Test.make ~name:"eigenvector seq = pooled (bitwise)" ~count:40 graph_gen
    (fun g ->
      let seq = Centrality.eigenvector ~direction:Centrality.In g in
      List.for_all
        (fun (_, pool) -> seq = Centrality.eigenvector ~direction:Centrality.In ~pool g)
        pools)

(* --- masked traversal kernels = list kernels on the induced subgraph ------------ *)

(* Node-alive masking must be indistinguishable from materializing the
   induced subgraph on the alive nodes: distances, ancestor sets and
   weakly connected components all agree after mapping sub ids back to
   parent ids.  Alive subsets are derived from an extra generator seed. *)
let masked_gen = QCheck2.Gen.(pair graph_gen (int_range 0 1_000_000))

let alive_subset g seed =
  let st = Random.State.make [| seed |] in
  List.filter (fun _ -> Random.State.bool st) (List.init (Digraph.n g) Fun.id)

let prop_masked_bfs_dist =
  QCheck2.Test.make ~name:"masked BFS dist = BFS on induced subgraph" ~count:40
    masked_gen (fun (g, seed) ->
      let n = Digraph.n g in
      let alive_nodes = alive_subset g seed in
      let csr = Csr.of_digraph g in
      let alive = Csr.mask_of_list csr alive_nodes in
      let sub = Digraph.induced_subgraph g alive_nodes in
      let sources = List.filteri (fun i _ -> i mod 2 = 0) alive_nodes in
      let masked = Traverse.bfs_dist_csr csr ~alive sources in
      let dsub =
        Traverse.bfs_dist sub.Digraph.graph
          (List.filter_map (Digraph.sub_of_parent sub) sources)
      in
      List.for_all
        (fun v ->
          match Digraph.sub_of_parent sub v with
          | Some sv -> masked.(v) = dsub.(sv)
          | None -> masked.(v) = Traverse.no_dist)
        (List.init n Fun.id)
      (* and a full mask reproduces the unmasked traversal exactly *)
      && Traverse.bfs_dist_csr csr ~alive:(Csr.full_mask csr) sources
         = Traverse.bfs_dist g sources)

let prop_masked_ancestors =
  QCheck2.Test.make ~name:"masked ancestors = ancestors of induced subgraph" ~count:40
    masked_gen (fun (g, seed) ->
      let alive_nodes = alive_subset g seed in
      let csr = Csr.of_digraph g in
      let rev = Csr.transpose csr in
      let alive = Csr.mask_of_list csr alive_nodes in
      let sub = Digraph.induced_subgraph g alive_nodes in
      let targets = List.filteri (fun i _ -> i mod 3 = 0) alive_nodes in
      let masked = Traverse.ancestors_csr ~rev ~alive targets in
      let reference =
        Traverse.ancestors sub.Digraph.graph
          (List.filter_map (Digraph.sub_of_parent sub) targets)
        |> List.map (Digraph.sub_to_parent sub)
        |> List.sort compare
      in
      masked = reference
      && Traverse.ancestors_csr ~rev ~alive:(Csr.full_mask csr) targets
         = Traverse.ancestors g targets)

let prop_masked_components =
  QCheck2.Test.make
    ~name:"masked weak components = components of induced subgraph (same order)"
    ~count:40 masked_gen (fun (g, seed) ->
      let alive_nodes = alive_subset g seed in
      let csr = Csr.of_digraph g in
      let rev = Csr.transpose csr in
      let alive = Csr.mask_of_list csr alive_nodes in
      let sub = Digraph.induced_subgraph g alive_nodes in
      let masked = Components.weakly_connected_components_csr csr ~rev ~alive in
      let reference =
        Components.weakly_connected_components sub.Digraph.graph
        |> List.map (List.map (Digraph.sub_to_parent sub))
      in
      (* exact equality locks the discovery order (ascending smallest
         member) and the ascending order inside each component *)
      masked = reference
      && Components.weakly_connected_components_csr csr ~rev ~alive:(Csr.full_mask csr)
         = Components.weakly_connected_components g)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_gn_step_differential;
      prop_gn_target_differential;
      prop_gn_approx_differential;
      prop_csr_brandes_bitwise_seq;
      prop_csr_brandes_bitwise_pool;
      prop_csr_sources_restriction;
      prop_eigenvector_gather_matches_scatter;
      prop_eigenvector_pool_bitwise;
      prop_masked_bfs_dist;
      prop_masked_ancestors;
      prop_masked_components;
    ]

let () =
  Alcotest.run "rca_csr_gn"
    [
      ( "csr",
        [
          Alcotest.test_case "mirrors digraph" `Quick csr_mirrors_digraph;
          Alcotest.test_case "rev + arc_id" `Quick csr_rev_and_arc_id;
          Alcotest.test_case "of_digraph_sub = induced_subgraph" `Quick csr_sub_matches_induced;
          Alcotest.test_case "transpose" `Quick csr_transpose_reverses_arcs;
          Alcotest.test_case "alive mask = edge removal" `Quick alive_mask_equals_removal;
        ] );
      ( "argmax",
        [
          Alcotest.test_case "tie breaking" `Quick argmax_tie_breaking;
          Alcotest.test_case "max_edge on a path" `Quick max_edge_on_path;
        ] );
      ( "girvan-newman edge cases",
        [
          Alcotest.test_case "empty graph" `Quick gn_empty_graph;
          Alcotest.test_case "edgeless graph" `Quick gn_edgeless_graph;
          Alcotest.test_case "self-loops only" `Quick gn_self_loops_only;
          Alcotest.test_case "single edge" `Quick gn_single_edge;
          Alcotest.test_case "bridge + removal budget" `Quick gn_bridge_and_budget;
        ] );
      ("differential", qcheck_cases);
    ]
