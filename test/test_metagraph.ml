(* Tests for rca_metagraph (source -> digraph compilation) and
   rca_coverage (execution-based filtering). *)

open Rca_fortran
module G = Rca_graph
module MG = Rca_metagraph.Metagraph
module Cov = Rca_coverage.Coverage

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let parse src = Parser.parse_file ~strict:false ~file:"t.F90" src

let build src = MG.build (parse src)

let find_node mg ~module_ ~sub ~canonical =
  let hits =
    List.filter
      (fun id ->
        let n = MG.node mg id in
        n.MG.module_ = module_ && n.MG.subprogram = sub)
      (MG.nodes_with_canonical mg canonical)
  in
  match hits with
  | [ id ] -> id
  | [] -> Alcotest.failf "node %s.%s.%s not found" module_ sub canonical
  | _ -> Alcotest.failf "node %s.%s.%s ambiguous" module_ sub canonical

let has_edge (mg : MG.t) a b = G.Digraph.mem_edge mg.MG.graph a b

(* --- basic assignment edges ------------------------------------------------- *)

let simple_assignment_edges () =
  let mg =
    build
      {|
module m
  real(r8) :: x, y, z
contains
  subroutine s()
    z = x + y
  end subroutine s
end module m
|}
  in
  let x = find_node mg ~module_:"m" ~sub:"" ~canonical:"x" in
  let y = find_node mg ~module_:"m" ~sub:"" ~canonical:"y" in
  let z = find_node mg ~module_:"m" ~sub:"" ~canonical:"z" in
  check_bool "x->z" true (has_edge mg x z);
  check_bool "y->z" true (has_edge mg y z);
  check_bool "no z->x" false (has_edge mg z x)

let locals_scoped_per_subprogram () =
  let mg =
    build
      {|
module m
contains
  subroutine s1()
    real(r8) :: w
    w = 1.0
  end subroutine s1
  subroutine s2()
    real(r8) :: w
    w = 2.0
  end subroutine s2
end module m
|}
  in
  check_int "two distinct w nodes" 2 (List.length (MG.nodes_with_canonical mg "w"));
  let n1 = MG.node mg (find_node mg ~module_:"m" ~sub:"s1" ~canonical:"w") in
  check_str "unique name" "w__s1" n1.MG.unique

let self_loop_for_accumulation () =
  let mg =
    build
      "module m\nreal(r8) :: acc, d\ncontains\nsubroutine s()\nacc = acc + d\nend subroutine\nend module m"
  in
  let acc = find_node mg ~module_:"m" ~sub:"" ~canonical:"acc" in
  check_bool "self loop" true (has_edge mg acc acc)

let array_indices_ignored () =
  let mg =
    build
      {|
module m
  real(r8) :: a(10), b(10)
  integer :: i
contains
  subroutine s()
    a(i) = b(i + 1) * 2.0
  end subroutine s
end module m
|}
  in
  let a = find_node mg ~module_:"m" ~sub:"" ~canonical:"a" in
  let b = find_node mg ~module_:"m" ~sub:"" ~canonical:"b" in
  check_bool "b->a" true (has_edge mg b a);
  (* the index variable contributes no dependency at all *)
  Alcotest.(check (list int)) "preds of a are exactly [b]" [ b ]
    (G.Digraph.pred mg.MG.graph a)

(* --- derived types ------------------------------------------------------------ *)

let derived_type_canonical_names () =
  let mg =
    build
      {|
module types_m
  type st
    real(r8) :: omega_p(4)
  end type st
end module types_m

module m
  use types_m
  type(st) :: elem
  real(r8) :: wrk
contains
  subroutine s(ie)
    integer, intent(in) :: ie
    elem%omega_p(ie) = wrk
  end subroutine s
end module m
|}
  in
  let om = find_node mg ~module_:"m" ~sub:"" ~canonical:"omega_p" in
  let wrk = find_node mg ~module_:"m" ~sub:"" ~canonical:"wrk" in
  check_bool "wrk -> omega_p" true (has_edge mg wrk om);
  check_str "canonical" "omega_p" (MG.node mg om).MG.canonical

let derived_access_shares_node_across_modules () =
  let mg =
    build
      {|
module state_m
  type st
    real(r8) :: t(4)
  end type st
  type(st) :: state
end module state_m

module writer
  use state_m
  real(r8) :: w
contains
  subroutine ws()
    state%t(1) = w
  end subroutine ws
end module writer

module reader
  use state_m
  real(r8) :: r
contains
  subroutine rs()
    r = state%t(2)
  end subroutine rs
end module reader
|}
  in
  check_int "one t node" 1 (List.length (MG.nodes_with_canonical mg "t"));
  let t = find_node mg ~module_:"state_m" ~sub:"" ~canonical:"t" in
  let w = find_node mg ~module_:"writer" ~sub:"" ~canonical:"w" in
  let r = find_node mg ~module_:"reader" ~sub:"" ~canonical:"r" in
  check_bool "w->t" true (has_edge mg w t);
  check_bool "t->r" true (has_edge mg t r)

(* --- calls ---------------------------------------------------------------------- *)

let function_call_maps_args_and_result () =
  let mg =
    build
      {|
module m
  real(r8) :: inp, out
contains
  function f(x) result(y)
    real(r8), intent(in) :: x
    real(r8) :: y
    y = x * 2.0
  end function f
  subroutine s()
    out = f(inp)
  end subroutine s
end module m
|}
  in
  let inp = find_node mg ~module_:"m" ~sub:"" ~canonical:"inp" in
  let x = find_node mg ~module_:"m" ~sub:"f" ~canonical:"x" in
  let y = find_node mg ~module_:"m" ~sub:"f" ~canonical:"y" in
  let out = find_node mg ~module_:"m" ~sub:"" ~canonical:"out" in
  check_bool "inp->x" true (has_edge mg inp x);
  check_bool "x->y (body)" true (has_edge mg x y);
  check_bool "y->out (result)" true (has_edge mg y out)

let composite_call_structure () =
  (* the paper's omega = alpha(b(c,d) * e(f(g+h))) example *)
  let mg =
    build
      {|
module m
  real(r8) :: c, d, g, h, omega
contains
  function alpha(x) result(r)
    real(r8), intent(in) :: x
    real(r8) :: r
    r = x
  end function alpha
  function b(x1, x2) result(r)
    real(r8), intent(in) :: x1, x2
    real(r8) :: r
    r = x1 + x2
  end function b
  function e(x) result(r)
    real(r8), intent(in) :: x
    real(r8) :: r
    r = x
  end function e
  function f(x) result(r)
    real(r8), intent(in) :: x
    real(r8) :: r
    r = x
  end function f
  subroutine s()
    omega = alpha(b(c, d) * e(f(g + h)))
  end subroutine s
end module m
|}
  in
  let n name sub = find_node mg ~module_:"m" ~sub ~canonical:name in
  check_bool "g -> input(f)" true (has_edge mg (n "g" "") (n "x" "f"));
  check_bool "h -> input(f)" true (has_edge mg (n "h" "") (n "x" "f"));
  check_bool "output(f) -> input(e)" true (has_edge mg (n "r" "f") (n "x" "e"));
  check_bool "c -> input1(b)" true (has_edge mg (n "c" "") (n "x1" "b"));
  check_bool "d -> input2(b)" true (has_edge mg (n "d" "") (n "x2" "b"));
  check_bool "output(e) -> input(alpha)" true (has_edge mg (n "r" "e") (n "x" "alpha"));
  check_bool "output(b) -> input(alpha)" true (has_edge mg (n "r" "b") (n "x" "alpha"));
  check_bool "output(alpha) -> omega" true (has_edge mg (n "r" "alpha") (n "omega" ""))

let subroutine_call_respects_intent () =
  let mg =
    build
      {|
module m
  real(r8) :: a, b, c
contains
  subroutine sub(x, y, z)
    real(r8), intent(in) :: x
    real(r8), intent(out) :: y
    real(r8), intent(inout) :: z
    y = x
    z = z + x
  end subroutine sub
  subroutine s()
    call sub(a, b, c)
  end subroutine s
end module m
|}
  in
  let n name sub = find_node mg ~module_:"m" ~sub ~canonical:name in
  check_bool "a -> x (in)" true (has_edge mg (n "a" "") (n "x" "sub"));
  check_bool "x -/-> a" false (has_edge mg (n "x" "sub") (n "a" ""));
  check_bool "y -> b (out)" true (has_edge mg (n "y" "sub") (n "b" ""));
  check_bool "b -/-> y" false (has_edge mg (n "b" "") (n "y" "sub"));
  check_bool "c -> z (inout)" true (has_edge mg (n "c" "") (n "z" "sub"));
  check_bool "z -> c (inout)" true (has_edge mg (n "z" "sub") (n "c" ""))

let interface_maps_all_candidates () =
  let mg =
    build
      {|
module m
  real(r8) :: a, r
  interface generic
    module procedure impl1, impl2
  end interface
contains
  function impl1(x) result(v)
    real(r8), intent(in) :: x
    real(r8) :: v
    v = x
  end function impl1
  function impl2(x) result(v)
    real(r8), intent(in) :: x
    real(r8) :: v
    v = x * 2.0
  end function impl2
  subroutine s()
    r = generic(a)
  end subroutine s
end module m
|}
  in
  let n name sub = find_node mg ~module_:"m" ~sub ~canonical:name in
  (* conservative: both candidates connected *)
  check_bool "a -> impl1 x" true (has_edge mg (n "a" "") (n "x" "impl1"));
  check_bool "a -> impl2 x" true (has_edge mg (n "a" "") (n "x" "impl2"));
  check_bool "impl1 v -> r" true (has_edge mg (n "v" "impl1") (n "r" ""));
  check_bool "impl2 v -> r" true (has_edge mg (n "v" "impl2") (n "r" ""))

let intrinsics_localized_per_line () =
  let mg =
    build
      {|
module m
  real(r8) :: a, b, c, d
contains
  subroutine s()
    c = min(a, b)
    d = min(a, c)
  end subroutine s
end module m
|}
  in
  (* two distinct min nodes, one per call line *)
  let mins =
    List.filter
      (fun id ->
        let n = MG.node mg id in
        String.length n.MG.canonical >= 4 && String.sub n.MG.canonical 0 4 = "min_")
      (List.init (MG.n_nodes mg) (fun i -> i))
  in
  check_int "two localized min nodes" 2 (List.length mins)

let use_rename_resolves () =
  let mg =
    build
      {|
module src_m
  real(r8) :: remote_name
end module src_m

module m
  use src_m, only: local_name => remote_name
  real(r8) :: y
contains
  subroutine s()
    y = local_name
  end subroutine s
end module m
|}
  in
  check_int "one node for the variable" 1 (List.length (MG.nodes_with_canonical mg "remote_name"));
  let rn = find_node mg ~module_:"src_m" ~sub:"" ~canonical:"remote_name" in
  let y = find_node mg ~module_:"m" ~sub:"" ~canonical:"y" in
  check_bool "edge through rename" true (has_edge mg rn y)

let random_number_creates_source_node () =
  let mg =
    build
      "module m\nreal(r8) :: rnd(4)\ncontains\nsubroutine s()\ncall random_number(rnd)\nend subroutine\nend module m"
  in
  let rnd = find_node mg ~module_:"m" ~sub:"" ~canonical:"rnd" in
  check_bool "prng node feeds rnd" true
    (List.exists
       (fun p ->
         let n = MG.node mg p in
         String.length n.MG.canonical >= 13 && String.sub n.MG.canonical 0 13 = "random_number")
       (G.Digraph.pred mg.MG.graph rnd))

let outfld_mapping_recorded () =
  let mg =
    build
      {|
module m
  real(r8) :: flwds(4)
contains
  function mean(f) result(g)
    real(r8), intent(in) :: f(4)
    real(r8) :: g
    g = sum(f) / 4.0
  end function mean
  subroutine s()
    call outfld('flds', mean(flwds))
  end subroutine s
end module m
|}
  in
  Alcotest.(check (list string)) "label maps to variable" [ "flwds" ]
    (MG.io_internal_names mg "flds")

let unparsed_goes_through_fallback_chain () =
  let mg =
    build
      {|
module m
  real(r8) :: q(4), qt(4)
contains
  subroutine s()
    where (q > 0.0) qt = qt + q * 0.5
  end subroutine s
end module m
|}
  in
  (* `where` defeats the structured parser; the relaxed chain must still
     recover identifiers.  Stage 3 (scrape) treats the first identifier as
     the target; q -> qt edge existence depends on the stage used, so just
     assert the statement was not dropped. *)
  check_int "handled by a fallback" 0 mg.MG.stats.MG.unhandled;
  check_bool "some fallback used" true
    (mg.MG.stats.MG.parsed_relaxed + mg.MG.stats.MG.parsed_scraped > 0)

(* Each stage of the fallback chain, pinned to its build_stats bucket. *)

let fallback_lands_in_relaxed_bucket () =
  (* ';' defeats the lexer, so the structured parser keeps the statement
     as Unparsed; stage 2 still finds the top-level '=' and splits. *)
  let mg =
    build
      "module m\nreal(r8) :: a, b\ncontains\nsubroutine s()\na = b; b = a\nend subroutine\nend module m"
  in
  check_int "relaxed" 1 mg.MG.stats.MG.parsed_relaxed;
  check_int "scraped" 0 mg.MG.stats.MG.parsed_scraped;
  check_int "unhandled" 0 mg.MG.stats.MG.unhandled;
  let a = find_node mg ~module_:"m" ~sub:"" ~canonical:"a" in
  let b = find_node mg ~module_:"m" ~sub:"" ~canonical:"b" in
  check_bool "b -> a recovered" true (has_edge mg b a)

let fallback_lands_in_scraped_bucket () =
  (* pointer assignment: no top-level '=' (stage 2 skips '=>'), so stage 3
     scrapes identifiers, first declared identifier becomes the target. *)
  let mg =
    build
      "module m\nreal(r8) :: qout, qin\ncontains\nsubroutine s()\nqout => qin\nend subroutine\nend module m"
  in
  check_int "relaxed" 0 mg.MG.stats.MG.parsed_relaxed;
  check_int "scraped" 1 mg.MG.stats.MG.parsed_scraped;
  check_int "unhandled" 0 mg.MG.stats.MG.unhandled;
  let qout = find_node mg ~module_:"m" ~sub:"" ~canonical:"qout" in
  let qin = find_node mg ~module_:"m" ~sub:"" ~canonical:"qin" in
  check_bool "qin -> qout recovered" true (has_edge mg qin qout)

let fallback_lands_in_unhandled_bucket () =
  (* write statement: no '=', and the leading identifier is not a declared
     variable, so even scraping gives up. *)
  let mg =
    build
      "module m\nreal(r8) :: a\ncontains\nsubroutine s()\nwrite(*,*) a\nend subroutine\nend module m"
  in
  check_int "relaxed" 0 mg.MG.stats.MG.parsed_relaxed;
  check_int "scraped" 0 mg.MG.stats.MG.parsed_scraped;
  check_int "unhandled" 1 mg.MG.stats.MG.unhandled

let truly_hopeless_statement_counted () =
  let prog =
    parse
      "module m\ncontains\nsubroutine s()\ncall weird syntax here ((\nend subroutine\nend module m"
  in
  let mg = MG.build prog in
  check_bool "counted as unhandled or scraped" true
    (mg.MG.stats.MG.unhandled + mg.MG.stats.MG.parsed_scraped >= 0)

(* --- edge origins + pruning (the paper's proposed extension) ----------------- *)

let edge_origins_recorded () =
  let mg =
    build
      "module m\nreal(r8) :: x, y\ncontains\nsubroutine s()\ny = x * 2.0\nend subroutine\nend module m"
  in
  let x = find_node mg ~module_:"m" ~sub:"" ~canonical:"x" in
  let y = find_node mg ~module_:"m" ~sub:"" ~canonical:"y" in
  match MG.edge_origins mg x y with
  | [ (m, sub, line) ] ->
      check_str "module" "m" m;
      check_str "sub" "s" sub;
      check_bool "line recorded" true (line = 5)
  | o -> Alcotest.failf "expected one origin, got %d" (List.length o)

let prune_removes_unexecuted_edges () =
  let src =
    {|
module m
  real(r8) :: x, a, b
contains
  subroutine s(flag)
    logical, intent(in) :: flag
    if (flag) then
      x = a
    else
      x = b
    end if
  end subroutine s
end module m
|}
  in
  let prog = parse src in
  let mg = MG.build prog in
  let x = find_node mg ~module_:"m" ~sub:"" ~canonical:"x" in
  let a = find_node mg ~module_:"m" ~sub:"" ~canonical:"a" in
  let b = find_node mg ~module_:"m" ~sub:"" ~canonical:"b" in
  check_bool "a->x statically" true (has_edge mg a x);
  check_bool "b->x statically" true (has_edge mg b x);
  (* execute only the then-branch *)
  let machine = Rca_interp.Machine.create prog in
  let cov = Cov.create () in
  Cov.attach cov machine;
  ignore
    (Rca_interp.Machine.invoke machine ~module_:"m" ~sub:"s"
       ~args:[ Rca_interp.Machine.Vlog true ]);
  let pruned =
    Rca_metagraph.Prune.executed_only mg ~line_executed:(Cov.line_executed cov)
  in
  check_bool "a->x survives" true (has_edge pruned a x);
  check_bool "b->x pruned" false (has_edge pruned b x);
  let st = Rca_metagraph.Prune.prune_stats mg pruned in
  check_int "one edge removed" (st.Rca_metagraph.Prune.edges_before - 1)
    st.Rca_metagraph.Prune.edges_after

let synthetic_flags () =
  let mg =
    build
      "module m\nreal(r8) :: a, b, rnd(3)\ncontains\nsubroutine s()\nb = min(a, 1.0)\ncall random_number(rnd)\nend subroutine\nend module m"
  in
  let b = find_node mg ~module_:"m" ~sub:"" ~canonical:"b" in
  check_bool "b is instrumentable" false (MG.node mg b).MG.synthetic;
  let synth =
    List.filter (fun id -> (MG.node mg id).MG.synthetic) (List.init (MG.n_nodes mg) (fun i -> i))
  in
  (* min_5 and random_number_6 *)
  check_int "two synthetic nodes" 2 (List.length synth)

(* --- coverage -------------------------------------------------------------------- *)

let coverage_src =
  {|
module covm
  real(r8) :: x
contains
  subroutine used()
    x = 1.0
  end subroutine used
  subroutine never()
    x = 2.0
  end subroutine never
end module covm

module deadm
  real(r8) :: y
contains
  subroutine also_never()
    y = 3.0
  end subroutine also_never
end module deadm
|}

let coverage_filters () =
  let prog = parse coverage_src in
  let machine = Rca_interp.Machine.create prog in
  let cov = Cov.create () in
  Cov.attach cov machine;
  ignore (Rca_interp.Machine.invoke machine ~module_:"covm" ~sub:"used" ~args:[]);
  check_bool "module executed" true (Cov.module_executed cov "covm");
  check_bool "dead module" false (Cov.module_executed cov "deadm");
  check_bool "sub executed" true (Cov.subprogram_executed cov ~module_:"covm" ~sub:"used");
  check_bool "never executed" false (Cov.subprogram_executed cov ~module_:"covm" ~sub:"never");
  let filtered = Cov.filter_program prog cov in
  check_int "one module kept" 1 (List.length filtered);
  check_int "one subprogram kept" 1
    (List.length (List.hd filtered).Rca_fortran.Ast.m_subprograms);
  let rep = Cov.report prog cov in
  check_int "modules total" 2 rep.Cov.modules_total;
  check_int "subs executed" 1 rep.Cov.subprograms_executed

let coverage_line_level () =
  let src =
    "module m\nreal(r8) :: x\ncontains\nsubroutine s(flag)\nlogical, intent(in) :: flag\nif (flag) then\nx = 1.0\nelse\nx = 2.0\nend if\nend subroutine\nend module m"
  in
  let prog = parse src in
  let machine = Rca_interp.Machine.create prog in
  let cov = Cov.create () in
  Cov.attach cov machine;
  ignore (Rca_interp.Machine.invoke machine ~module_:"m" ~sub:"s" ~args:[ Rca_interp.Machine.Vlog true ]);
  check_bool "then branch line" true (Cov.line_executed cov ~module_:"m" ~sub:"s" ~line:7);
  check_bool "else branch not" false (Cov.line_executed cov ~module_:"m" ~sub:"s" ~line:9)

(* --- qcheck: metagraph structural invariants ------------------------------------- *)

let synth_mg =
  lazy
    (let srcs = Rca_synth.Model.generate Rca_synth.Config.tiny in
     let prog =
       Rca_synth.Model.build_filter
         (Rca_synth.Model.parse_program ~strict:true srcs)
         ~driver:"cam_driver"
     in
     MG.build prog)

let synth_model_graph_wellformed () =
  let mg = Lazy.force synth_mg in
  check_bool "nonempty" true (MG.n_nodes mg > 200);
  check_bool "edges" true (G.Digraph.m mg.MG.graph > MG.n_nodes mg);
  (* metadata arrays aligned *)
  check_int "meta length" (MG.n_nodes mg) (Array.length mg.MG.node_meta);
  (* canonical index covers every node *)
  let covered = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _ ids -> List.iter (fun id -> Hashtbl.replace covered id ()) ids)
    mg.MG.by_canonical;
  check_int "canonical index covers all" (MG.n_nodes mg) (Hashtbl.length covered);
  check_int "all assignments handled" 0 mg.MG.stats.MG.unhandled

let synth_model_io_map_matches_catalogue () =
  let mg = Lazy.force synth_mg in
  List.iter
    (fun e ->
      let internals = MG.io_internal_names mg e.Rca_synth.Outputs.output in
      if not (List.mem e.Rca_synth.Outputs.internal internals) then
        Alcotest.failf "output %s: expected internal %s, got [%s]"
          e.Rca_synth.Outputs.output e.Rca_synth.Outputs.internal
          (String.concat ", " internals))
    Rca_synth.Outputs.catalogue

let () =
  Alcotest.run "rca_metagraph"
    [
      ( "assignments",
        [
          Alcotest.test_case "simple edges" `Quick simple_assignment_edges;
          Alcotest.test_case "scoped locals" `Quick locals_scoped_per_subprogram;
          Alcotest.test_case "self loop" `Quick self_loop_for_accumulation;
          Alcotest.test_case "indices ignored" `Quick array_indices_ignored;
        ] );
      ( "derived types",
        [
          Alcotest.test_case "canonical names" `Quick derived_type_canonical_names;
          Alcotest.test_case "shared across modules" `Quick derived_access_shares_node_across_modules;
        ] );
      ( "calls",
        [
          Alcotest.test_case "function args/result" `Quick function_call_maps_args_and_result;
          Alcotest.test_case "composite example" `Quick composite_call_structure;
          Alcotest.test_case "intent direction" `Quick subroutine_call_respects_intent;
          Alcotest.test_case "interface candidates" `Quick interface_maps_all_candidates;
          Alcotest.test_case "intrinsics localized" `Quick intrinsics_localized_per_line;
        ] );
      ( "resolution",
        [
          Alcotest.test_case "use renames" `Quick use_rename_resolves;
          Alcotest.test_case "random_number source" `Quick random_number_creates_source_node;
          Alcotest.test_case "outfld mapping" `Quick outfld_mapping_recorded;
          Alcotest.test_case "fallback chain" `Quick unparsed_goes_through_fallback_chain;
          Alcotest.test_case "fallback relaxed bucket" `Quick fallback_lands_in_relaxed_bucket;
          Alcotest.test_case "fallback scraped bucket" `Quick fallback_lands_in_scraped_bucket;
          Alcotest.test_case "fallback unhandled bucket" `Quick fallback_lands_in_unhandled_bucket;
          Alcotest.test_case "hopeless statement" `Quick truly_hopeless_statement_counted;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "filters" `Quick coverage_filters;
          Alcotest.test_case "line level" `Quick coverage_line_level;
        ] );
      ( "pruning",
        [
          Alcotest.test_case "edge origins" `Quick edge_origins_recorded;
          Alcotest.test_case "prune unexecuted" `Quick prune_removes_unexecuted_edges;
          Alcotest.test_case "synthetic flags" `Quick synthetic_flags;
        ] );
      ( "synthetic model",
        [
          Alcotest.test_case "well-formed" `Quick synth_model_graph_wellformed;
          Alcotest.test_case "io map vs catalogue" `Quick synth_model_io_map_matches_catalogue;
        ] );
    ]
