(* Tests for rca_serve: the JSON codec, the LRU cache, snapshot
   save/load round trips (the byte-identity contract: a pipeline run on
   a loaded snapshot equals one on the freshly built model, both
   engines), rejection of damaged snapshot files, and a forked
   query-daemon end-to-end exercise including garbage requests (the
   daemon must answer an error object and keep serving). *)

open Rca_experiments
module MG = Rca_metagraph.Metagraph
module G = Rca_graph
module Snap = Rca_serve.Snapshot
module Server = Rca_serve.Server
module Client = Rca_serve.Client
module Lru = Rca_serve.Lru
module J = Rca_serve.Jsonio
module Cache = Rca_serve.Cache
module Binio = Rca_serve.Binio

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* --- jsonio --------------------------------------------------------------------- *)

let json_roundtrip () =
  let cases =
    [
      "null";
      "true";
      "false";
      "0";
      "-17";
      "3.25";
      {|"plain"|};
      {|"es\"c\\ap\ne\td"|};
      "[]";
      "[1,2,3]";
      {|{"a":1,"b":[true,null],"c":{"d":"e"}}|};
    ]
  in
  List.iter
    (fun s ->
      match J.of_string s with
      | Error msg -> Alcotest.failf "%s failed to parse: %s" s msg
      | Ok v -> check_string s s (J.to_string v))
    cases

let json_unicode_escapes () =
  (match J.of_string {|"Aé€"|} with
  | Ok (J.Str s) -> check_string "utf8" "A\xc3\xa9\xe2\x82\xac" s
  | _ -> Alcotest.fail "unicode escapes");
  (* surrogate pair -> one supplementary code point *)
  match J.of_string {|"😀"|} with
  | Ok (J.Str s) -> check_string "surrogate pair" "\xf0\x9f\x98\x80" s
  | _ -> Alcotest.fail "surrogate pair"

let json_errors () =
  List.iter
    (fun s ->
      match J.of_string s with
      | Ok v -> Alcotest.failf "%S should not parse, got %s" s (J.to_string v)
      | Error _ -> ())
    [
      "";
      "{";
      "[1,2";
      "{\"a\":}";
      "tru";
      "nul";
      "\"unterminated";
      "\"bad \\q escape\"";
      "01extra";
      "1 2";
      "{\"a\":1,}";
      "[1,]";
      "nan";
      "\"ctrl \x01 char\"";
    ]

let json_accessors () =
  let v = Result.get_ok (J.of_string {|{"n":5,"s":"x","l":[1],"f":2.5}|}) in
  check_bool "member" true (J.member "n" v = Some (J.Num 5.0));
  check_bool "absent member" true (J.member "zz" v = None);
  check_bool "int_opt" true (Option.bind (J.member "n" v) J.int_opt = Some 5);
  check_bool "int_opt rejects float" true (Option.bind (J.member "f" v) J.int_opt = None);
  check_bool "string_opt" true (Option.bind (J.member "s" v) J.string_opt = Some "x");
  check_bool "list_opt" true (Option.bind (J.member "l" v) J.list_opt = Some [ J.Num 1.0 ]);
  check_string "escaped key printing" {|{"a\nb":1}|} (J.to_string (J.Obj [ ("a\nb", J.num 1) ]))

(* --- lru ------------------------------------------------------------------------- *)

let lru_eviction_order () =
  let c = Lru.create 3 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  Lru.add c "c" 3;
  check_int "full" 3 (Lru.length c);
  Lru.add c "d" 4;
  (* "a" was least recent *)
  check_bool "a evicted" true (Lru.find c "a" = None);
  check_int "still capacity" 3 (Lru.length c);
  check_int "evictions" 1 (Lru.evictions c)

let lru_find_promotes () =
  let c = Lru.create 3 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  Lru.add c "c" 3;
  check_bool "hit a" true (Lru.find c "a" = Some 1);
  Lru.add c "d" 4;
  (* "b" is now the least recent, "a" was promoted by the find *)
  check_bool "b evicted" true (Lru.find c "b" = None);
  check_bool "a survives" true (Lru.find c "a" = Some 1);
  check_bool "most recent first" true (fst (List.hd (Lru.to_list c)) = "a")

let lru_overwrite_promotes () =
  let c = Lru.create 2 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  Lru.add c "a" 10;
  Lru.add c "c" 3;
  check_bool "b evicted" true (Lru.find c "b" = None);
  check_bool "a overwritten" true (Lru.find c "a" = Some 10);
  check_int "length" 2 (Lru.length c)

let lru_capacity_one () =
  let c = Lru.create 1 in
  Lru.add c 1 "x";
  Lru.add c 2 "y";
  check_bool "only latest" true (Lru.find c 2 = Some "y" && Lru.find c 1 = None);
  Alcotest.check_raises "zero capacity rejected"
    (Invalid_argument "Lru.create: capacity must be positive") (fun () ->
      ignore (Lru.create 0))

(* --- snapshot fixtures ------------------------------------------------------------ *)

(* One tiny-scale GOFFGRATCH model compiled the way `rca_main compile`
   does it: fixture + selection + bug nodes + freeze. *)
let compiled =
  lazy
    (let config = Rca_synth.Config.tiny in
     let spec = Experiments.goffgratch in
     let fixture = Fixture.make ~inject:spec.Harness.inject config in
     let p = Harness.default_params config in
     let sel = Harness.select_affected spec p fixture in
     let bug_nodes = Fixture.bug_nodes fixture ~canonicals:spec.Harness.bug_canonicals in
     let mg = fixture.Fixture.mg in
     let keep_modules =
       if spec.Harness.restrict_to_cam then
         Some
           (Array.to_list mg.MG.node_meta
           |> List.map (fun nd -> nd.MG.module_)
           |> List.sort_uniq compare
           |> List.filter Rca_synth.Outputs.is_cam_module)
       else None
     in
     {
       Snap.version = Snap.current_version;
       fingerprint = "test tiny GOFFGRATCH";
       scale = "tiny";
       experiment = spec.Harness.name;
       mg;
       frozen = Rca_core.Frozen.freeze mg.MG.graph;
       keep_modules;
       bug_nodes;
       default_targets = sel.Harness.sel_affected;
     })

let saved_bytes =
  lazy
    (let snap = Lazy.force compiled in
     let path = Filename.temp_file "rca_snap_test" ".rcasnap" in
     Snap.save path snap;
     let ic = open_in_bin path in
     let data = really_input_string ic (in_channel_length ic) in
     close_in ic;
     Sys.remove path;
     data)

let load_bytes data =
  let path = Filename.temp_file "rca_snap_test" ".rcasnap" in
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc;
  let r = Snap.load path in
  Sys.remove path;
  r

let sorted_bindings tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

(* --- snapshot round trip ----------------------------------------------------------- *)

let snapshot_structural_roundtrip () =
  let snap = Lazy.force compiled in
  let loaded =
    match load_bytes (Lazy.force saved_bytes) with
    | Ok s -> s
    | Error msg -> Alcotest.failf "load failed: %s" msg
  in
  check_string "fingerprint" snap.Snap.fingerprint loaded.Snap.fingerprint;
  check_string "scale" snap.Snap.scale loaded.Snap.scale;
  check_string "experiment" snap.Snap.experiment loaded.Snap.experiment;
  check_bool "keep_modules" true (snap.Snap.keep_modules = loaded.Snap.keep_modules);
  check_bool "bug_nodes" true (snap.Snap.bug_nodes = loaded.Snap.bug_nodes);
  check_bool "default_targets" true (snap.Snap.default_targets = loaded.Snap.default_targets);
  let a = snap.Snap.mg and b = loaded.Snap.mg in
  check_bool "node_meta" true (a.MG.node_meta = b.MG.node_meta);
  check_int "graph n" (G.Digraph.n a.MG.graph) (G.Digraph.n b.MG.graph);
  check_int "graph m" (G.Digraph.m a.MG.graph) (G.Digraph.m b.MG.graph);
  (* both list orders must survive verbatim — the determinism contract *)
  check_bool "succ and pred orders" true
    (G.Digraph.adjacency a.MG.graph = G.Digraph.adjacency b.MG.graph);
  check_bool "by_key" true (sorted_bindings a.MG.by_key = sorted_bindings b.MG.by_key);
  (* by_canonical is rebuilt, not deserialized: per-name id lists must
     still match exactly, order included *)
  check_bool "by_canonical" true
    (sorted_bindings a.MG.by_canonical = sorted_bindings b.MG.by_canonical);
  check_bool "io_map" true (sorted_bindings a.MG.io_map = sorted_bindings b.MG.io_map);
  check_bool "edge_origins" true
    (sorted_bindings a.MG.edge_origins = sorted_bindings b.MG.edge_origins);
  check_bool "stats" true (a.MG.stats = b.MG.stats);
  (* the reconstructed frozen CSR must be bitwise identical to freezing
     the original graph *)
  let fa = snap.Snap.frozen and fb = loaded.Snap.frozen in
  check_bool "csr row" true (fa.Rca_core.Frozen.csr.G.Csr.row = fb.Rca_core.Frozen.csr.G.Csr.row);
  check_bool "csr col" true (fa.Rca_core.Frozen.csr.G.Csr.col = fb.Rca_core.Frozen.csr.G.Csr.col);
  check_bool "csr src" true (fa.Rca_core.Frozen.csr.G.Csr.src = fb.Rca_core.Frozen.csr.G.Csr.src);
  check_bool "csr rev" true (fa.Rca_core.Frozen.csr.G.Csr.rev = fb.Rca_core.Frozen.csr.G.Csr.rev);
  check_bool "transpose row" true
    (fa.Rca_core.Frozen.rev.G.Csr.row = fb.Rca_core.Frozen.rev.G.Csr.row);
  check_bool "transpose col" true
    (fa.Rca_core.Frozen.rev.G.Csr.col = fb.Rca_core.Frozen.rev.G.Csr.col)

let strip t =
  ( t.Rca_core.Pipeline.slice.Rca_core.Slice.nodes,
    t.Rca_core.Pipeline.slice.Rca_core.Slice.targets,
    List.map
      (fun it ->
        Rca_core.Refine.
          (it.nodes, it.communities, it.sampled_by_community, it.sampled, it.detected))
      t.Rca_core.Pipeline.result.Rca_core.Refine.iterations,
    t.Rca_core.Pipeline.result.Rca_core.Refine.final_nodes,
    t.Rca_core.Pipeline.result.Rca_core.Refine.outcome )

(* The tentpole property: a pipeline run on the loaded snapshot is
   byte-identical to one on the freshly built model, on both engines. *)
let snapshot_pipeline_identical engine () =
  let snap = Lazy.force compiled in
  let loaded =
    match load_bytes (Lazy.force saved_bytes) with
    | Ok s -> s
    | Error msg -> Alcotest.failf "load failed: %s" msg
  in
  let keep_module m =
    match snap.Snap.keep_modules with None -> true | Some ms -> List.mem m ms
  in
  let targets = List.sort_uniq compare snap.Snap.default_targets in
  let run (s : Snap.t) =
    Rca_core.Pipeline.run ~keep_module ~min_cluster:4 ~m_sample:10 ~gn_approx:128
      ~stop_size:30 ~engine ~frozen:s.Snap.frozen s.Snap.mg ~outputs:targets
      ~detect:(Rca_core.Detector.reachability s.Snap.mg ~bug_nodes:s.Snap.bug_nodes)
  in
  let orig = run snap and reloaded = run loaded in
  check_bool "pipeline results identical" true (strip orig = strip reloaded);
  check_bool "candidates identical" true
    (Rca_core.Pipeline.candidates snap.Snap.mg orig
    = Rca_core.Pipeline.candidates loaded.Snap.mg reloaded);
  check_bool "located bugs identical" true
    (Rca_core.Pipeline.located_bugs snap.Snap.mg orig ~bug_nodes:snap.Snap.bug_nodes
    = Rca_core.Pipeline.located_bugs loaded.Snap.mg reloaded ~bug_nodes:loaded.Snap.bug_nodes)

let snapshot_describe () =
  let snap = Lazy.force compiled in
  let path = Filename.temp_file "rca_snap_test" ".rcasnap" in
  Snap.save path snap;
  (match Snap.describe path with
  | Ok (fp, scale, experiment) ->
      check_string "fingerprint" snap.Snap.fingerprint fp;
      check_string "scale" "tiny" scale;
      check_string "experiment" snap.Snap.experiment experiment
  | Error msg -> Alcotest.failf "describe failed: %s" msg);
  Sys.remove path

(* --- snapshot rejection ------------------------------------------------------------- *)

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  at 0

let expect_error ~substr data =
  match load_bytes data with
  | Ok _ -> Alcotest.failf "damaged snapshot loaded (wanted error with %S)" substr
  | Error msg ->
      if not (contains_substring msg substr) then
        Alcotest.failf "error %S does not mention %S" msg substr

let snapshot_rejects_damage () =
  let data = Lazy.force saved_bytes in
  let flip s i =
    let b = Bytes.of_string s in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
    Bytes.to_string b
  in
  expect_error ~substr:"shorter than the fixed header" (String.sub data 0 10);
  expect_error ~substr:"payload shorter" (String.sub data 0 (String.length data / 2));
  expect_error ~substr:"bad magic" (flip data 0);
  expect_error ~substr:"snapshot version" (flip data 8);
  expect_error ~substr:"checksum mismatch" (flip data 40);
  expect_error ~substr:"trailing bytes" (data ^ "x");
  (* empty and non-snapshot files *)
  expect_error ~substr:"shorter than the fixed header" "";
  expect_error ~substr:"bad magic" (String.make 64 'j');
  check_bool "pristine bytes still load" true (Result.is_ok (load_bytes data))

(* Re-wrap a (corrupted) payload in a valid frame — fresh length and
   checksum — so the structural readers, not the framing checks, must
   reject it.  These used to be [assert false] territory. *)
let reframe payload =
  let b = Buffer.create (String.length payload + 32) in
  Buffer.add_string b "RCASNAP\n";
  Buffer.add_int64_le b (Int64.of_int Snap.current_version);
  Buffer.add_int64_le b (Int64.of_int (String.length payload));
  Buffer.add_int64_le b (Binio.fnv1a64 payload);
  Buffer.add_string b payload;
  Buffer.contents b

let snapshot_rejects_payload_damage () =
  let data = Lazy.force saved_bytes in
  let payload = String.sub data 32 (String.length data - 32) in
  check_bool "reframed pristine payload loads" true (Result.is_ok (load_bytes (reframe payload)));
  (* payload cut mid-field, but with a consistent header *)
  expect_error ~substr:"ends mid-field"
    (reframe (String.sub payload 0 (String.length payload - 1)));
  (* structurally complete payload followed by junk *)
  expect_error ~substr:"trailing bytes" (reframe (payload ^ "zz"));
  (* implausible leading string length (first field: fingerprint) *)
  let huge = Bytes.of_string payload in
  Bytes.set_int64_le huge 0 0x7fffffffffL;
  expect_error ~substr:"implausible" (reframe (Bytes.to_string huge));
  let negative = Bytes.of_string payload in
  Bytes.set_int64_le negative 0 (-1L);
  expect_error ~substr:"implausible" (reframe (Bytes.to_string negative))

(* --- persisted query cache ---------------------------------------------------------- *)

let mk_answer i =
  {
    Cache.a_targets = [ Printf.sprintf "T%d" i ];
    a_detector = "gn";
    a_engine = "masked";
    a_slice_nodes = 10 * i;
    a_slice_targets = 1;
    a_iterations = 2;
    a_outcome = "converged";
    a_final_nodes = i + 1;
    a_candidates = [ (Printf.sprintf "cand%d" i, "mod", "sub", 40 + i) ];
    a_located = [ "mod::sub@41" ];
  }

let cache_roundtrip_and_invalidation () =
  let lru = Lru.create 4 in
  Lru.add lru "k1" (mk_answer 1);
  Lru.add lru "k2" (mk_answer 2);
  Lru.add lru "k3" (mk_answer 3);
  ignore (Lru.find lru "k1");
  (* recency now: k1, k3, k2 *)
  let path = Filename.temp_file "rca_cache_test" ".rcacache" in
  Cache.save path ~snapshot_checksum:42L lru;
  (match Cache.load path ~snapshot_checksum:42L ~capacity:4 with
  | Ok (loaded, n) ->
      check_int "entry count" 3 n;
      check_bool "entries and recency order survive" true (Lru.to_list loaded = Lru.to_list lru)
  | Error msg -> Alcotest.failf "cache load failed: %s" msg);
  (* a smaller capacity keeps the most recent entries *)
  (match Cache.load path ~snapshot_checksum:42L ~capacity:2 with
  | Ok (loaded, _) ->
      check_bool "eviction honours saved recency" true
        (List.map fst (Lru.to_list loaded) = [ "k1"; "k3" ])
  | Error msg -> Alcotest.failf "cache load failed: %s" msg);
  (* checksum-mismatch invalidation: a recompiled model rejects the file *)
  (match Cache.load path ~snapshot_checksum:43L ~capacity:4 with
  | Ok _ -> Alcotest.fail "cache stamped for another snapshot was accepted"
  | Error msg ->
      check_bool "names the snapshot mismatch" true
        (contains_substring msg "different snapshot"));
  let ic = open_in_bin path in
  let data = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  let flip s i =
    let b = Bytes.of_string s in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
    Bytes.to_string b
  in
  let load_cache_bytes bytes =
    let p = Filename.temp_file "rca_cache_test" ".rcacache" in
    let oc = open_out_bin p in
    output_string oc bytes;
    close_out oc;
    let r = Cache.load p ~snapshot_checksum:42L ~capacity:4 in
    Sys.remove p;
    r
  in
  let expect_cache_error ~substr bytes =
    match load_cache_bytes bytes with
    | Ok _ -> Alcotest.failf "damaged cache loaded (wanted error with %S)" substr
    | Error msg ->
        if not (contains_substring msg substr) then
          Alcotest.failf "error %S does not mention %S" msg substr
  in
  expect_cache_error ~substr:"bad magic" (flip data 0);
  expect_cache_error ~substr:"cache version" (flip data 8);
  expect_cache_error ~substr:"checksum mismatch" (flip data 40);
  expect_cache_error ~substr:"shorter than the fixed header" (String.sub data 0 12)

(* --- forked daemon end to end ------------------------------------------------------- *)

let with_daemon ?cache_path ?(workers = 1) f =
  let snap = Lazy.force compiled in
  let dir = Filename.temp_file "rca_serve_test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let sock = Filename.concat dir "rca.sock" in
  flush stdout;
  flush stderr;
  let child =
    match Unix.fork () with
    | 0 ->
        (try ignore (Server.serve ~cache_capacity:8 ~workers ?cache_path (`Unix sock) snap)
         with _ -> ());
        Unix._exit 0
    | pid -> pid
  in
  let rec connect attempts =
    match Client.connect (`Unix sock) with
    | conn -> conn
    | exception Unix.Unix_error _ when attempts > 0 ->
        Unix.sleepf 0.05;
        connect (attempts - 1)
  in
  let conn = connect 100 in
  Fun.protect
    ~finally:(fun () ->
      ignore (Client.request conn (J.Obj [ ("op", J.Str "shutdown") ]));
      Client.close conn;
      ignore (Unix.waitpid [] child);
      (try
         if Sys.file_exists sock then Sys.remove sock;
         Unix.rmdir dir
       with Sys_error _ | Unix.Unix_error _ -> ()))
    (fun () -> f conn)

let reply conn fields =
  match Client.request conn (J.Obj fields) with
  | Ok r -> r
  | Error msg -> Alcotest.failf "request failed: %s" msg

let status r = Option.bind (J.member "status" r) J.string_opt

let daemon_query_and_cache () =
  with_daemon (fun conn ->
      let ping = reply conn [ ("op", J.Str "ping") ] in
      check_bool "ping ok" true (status ping = Some "ok");
      let q = [ ("op", J.Str "query"); ("detector", J.Str "greedy") ] in
      let first = reply conn q in
      check_bool "query ok" true (status first = Some "ok");
      check_bool "first not cached" true (J.member "cached" first = Some (J.Bool false));
      let second = reply conn q in
      check_bool "repeat cached" true (J.member "cached" second = Some (J.Bool true));
      (* identical payloads modulo the per-request fields *)
      let strip_reply r =
        match r with
        | J.Obj fields ->
            List.filter
              (fun (k, _) -> k <> "cached" && k <> "coalesced" && k <> "elapsed_ms")
              fields
        | _ -> Alcotest.fail "reply not an object"
      in
      check_bool "cached reply identical" true (strip_reply first = strip_reply second);
      check_bool "locates the injected bug" true
        (match Option.bind (J.member "located_bugs" first) J.list_opt with
        | Some (_ :: _) -> true
        | _ -> false))

let daemon_survives_garbage () =
  with_daemon (fun conn ->
      (* raw non-JSON bytes: an error object, not a dropped connection *)
      Client.send_line conn "this is {{{ not json";
      (match Client.recv conn with
      | Ok r ->
          check_bool "garbage -> error reply" true (status r = Some "error");
          check_bool "error names the parse failure" true
            (match Option.bind (J.member "error" r) J.string_opt with
            | Some msg -> String.length msg > 0
            | None -> false)
      | Error msg -> Alcotest.failf "no reply to garbage: %s" msg);
      let bad_cases =
        [
          [ ("op", J.Str "query"); ("detector", J.Str "bogus") ];
          [ ("op", J.Str "query"); ("engine", J.Str "bogus") ];
          [ ("op", J.Str "query"); ("targets", J.Arr [ J.Str "NO_SUCH_OUTPUT" ]) ];
          [ ("op", J.Str "query"); ("targets", J.Str "not-an-array") ];
          [ ("op", J.Str "launch-missiles") ];
        ]
      in
      List.iter
        (fun fields ->
          let r = reply conn fields in
          check_bool "bad request -> error reply" true (status r = Some "error"))
        bad_cases;
      (* the daemon is still alive and still answers good requests *)
      let ping = reply conn [ ("op", J.Str "ping"); ("id", J.num 9) ] in
      check_bool "ping after garbage" true (status ping = Some "ok");
      check_bool "id echoed" true (J.member "id" ping = Some (J.Num 9.0));
      let stats = reply conn [ ("op", J.Str "stats") ] in
      check_bool "errors counted" true
        (match Option.bind (J.member "errors" stats) J.int_opt with
        | Some e -> e = 6
        | None -> false))

let strip_reply r =
  match r with
  | J.Obj fields ->
      List.filter
        (fun (k, _) -> k <> "cached" && k <> "coalesced" && k <> "elapsed_ms" && k <> "id")
        fields
  | _ -> Alcotest.fail "reply not an object"

(* The deliberately slow query: exact Girvan-Newman driven down to
   single-node communities.  Never primed, so it always computes. *)
let slow_fields id =
  [
    ("op", J.Str "query");
    ("id", J.num id);
    ("detector", J.Str "gn");
    ("stop_size", J.num 1);
    ("max_iterations", J.num 50);
  ]

(* Run the slow query's exact parameterization through the in-process
   pipeline, for field-for-field comparison with the served reply. *)
let in_process_slow () =
  let snap = Lazy.force compiled in
  let keep_module m =
    match snap.Snap.keep_modules with None -> true | Some ms -> List.mem m ms
  in
  let targets = List.sort_uniq compare snap.Snap.default_targets in
  let partitioner = Option.get (Rca_core.Refine.partitioner_of_string "gn") in
  Rca_core.Pipeline.run ~keep_module ~min_cluster:4 ~m_sample:10 ~min_community:3
    ~max_iterations:50 ~stop_size:1 ~partitioner ~engine:`Masked ~frozen:snap.Snap.frozen
    snap.Snap.mg ~outputs:targets
    ~detect:(Rca_core.Detector.reachability snap.Snap.mg ~bug_nodes:snap.Snap.bug_nodes)

(* Tentpole behavior: a slow cold query must not stall the reactor —
   fast cached queries pipelined behind it on the SAME connection are
   answered first, out of order, and every payload stays identical to
   its single-shot equivalent. *)
let daemon_concurrent_out_of_order () =
  with_daemon (fun conn ->
      let fast = [ ("op", J.Str "query"); ("detector", J.Str "greedy") ] in
      let primed = reply conn fast in
      check_bool "primed ok" true (status primed = Some "ok");
      Client.send conn (J.Obj (slow_fields 1));
      for i = 2 to 5 do
        Client.send conn (J.Obj (("id", J.num i) :: fast))
      done;
      let order = ref [] in
      for _ = 1 to 5 do
        match Client.recv conn with
        | Ok r -> (
            match Option.bind (J.member "id" r) J.int_opt with
            | Some id -> order := (id, r) :: !order
            | None -> Alcotest.fail "reply without id")
        | Error msg -> Alcotest.failf "recv failed: %s" msg
      done;
      let order = List.rev !order in
      let ids = List.map fst order in
      check_bool "every request answered" true (List.sort compare ids = [ 1; 2; 3; 4; 5 ]);
      check_bool "fast replies arrive before the slow one" true
        (match List.rev ids with 1 :: _ -> true | _ -> false);
      List.iter
        (fun (id, r) ->
          if id >= 2 then begin
            check_bool "fast reply cached" true (J.member "cached" r = Some (J.Bool true));
            check_bool "fast payload identical to single-shot" true
              (strip_reply r = strip_reply primed)
          end)
        order;
      let slow = List.assoc 1 order in
      check_bool "slow ok" true (status slow = Some "ok");
      let pipeline = in_process_slow () in
      let result = pipeline.Rca_core.Pipeline.result in
      let geti k = Option.bind (J.member k slow) J.int_opt in
      check_bool "slow slice_nodes" true
        (geti "slice_nodes"
        = Some (List.length pipeline.Rca_core.Pipeline.slice.Rca_core.Slice.nodes));
      check_bool "slow iterations" true
        (geti "iterations" = Some (List.length result.Rca_core.Refine.iterations));
      check_bool "slow final_nodes" true
        (geti "final_nodes" = Some (List.length result.Rca_core.Refine.final_nodes));
      check_bool "slow outcome" true
        (Option.bind (J.member "outcome" slow) J.string_opt
        = Some (Rca_core.Refine.outcome_string result.Rca_core.Refine.outcome));
      let snap = Lazy.force compiled in
      let expected_cands = Rca_core.Pipeline.candidates snap.Snap.mg pipeline in
      (match Option.bind (J.member "candidates" slow) J.list_opt with
      | None -> Alcotest.fail "slow reply has no candidates"
      | Some items ->
          let got =
            List.map
              (fun it ->
                ( Option.get (Option.bind (J.member "name" it) J.string_opt),
                  Option.get (Option.bind (J.member "module" it) J.string_opt),
                  Option.get (Option.bind (J.member "subprogram" it) J.string_opt),
                  Option.get (Option.bind (J.member "line" it) J.int_opt) ))
              items
          in
          check_bool "slow candidates identical to single-shot" true (got = expected_cands));
      let expected_located =
        Rca_core.Pipeline.located_bugs snap.Snap.mg pipeline ~bug_nodes:snap.Snap.bug_nodes
        |> List.map (fun id -> (MG.node snap.Snap.mg id).MG.unique)
      in
      check_bool "slow located bugs identical to single-shot" true
        (match Option.bind (J.member "located_bugs" slow) J.list_opt with
        | Some items -> List.filter_map J.string_opt items = expected_located
        | None -> false))

(* Two identical cold requests pipelined together: the second attaches
   to the first's in-flight job instead of recomputing. *)
let daemon_inflight_coalescing () =
  with_daemon (fun conn ->
      Client.send conn (J.Obj (slow_fields 1));
      Client.send conn (J.Obj (slow_fields 2));
      let r1 =
        match Client.recv_matching conn ~id:1 with
        | Ok r -> r
        | Error msg -> Alcotest.failf "recv 1 failed: %s" msg
      in
      let r2 =
        match Client.recv_matching conn ~id:2 with
        | Ok r -> r
        | Error msg -> Alcotest.failf "recv 2 failed: %s" msg
      in
      check_bool "first computes" true (J.member "cached" r1 = Some (J.Bool false));
      check_bool "first not coalesced" true (J.member "coalesced" r1 = Some (J.Bool false));
      check_bool "second coalesced onto the in-flight job" true
        (J.member "coalesced" r2 = Some (J.Bool true));
      check_bool "second not served from the LRU" true
        (J.member "cached" r2 = Some (J.Bool false));
      check_bool "coalesced payload identical" true (strip_reply r1 = strip_reply r2))

(* Warm restart: a daemon with a cache sidecar saves on shutdown; the
   next daemon on the same sidecar answers the same query from cache
   immediately, with an identical payload. *)
let daemon_warm_restart () =
  let dir = Filename.temp_file "rca_cache_restart" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let cache_path = Filename.concat dir "rca.cache" in
  let fast = [ ("op", J.Str "query"); ("detector", J.Str "greedy") ] in
  let first_run =
    with_daemon ~cache_path (fun conn ->
        let r = reply conn fast in
        check_bool "cold daemon computes" true (J.member "cached" r = Some (J.Bool false));
        strip_reply r)
  in
  check_bool "sidecar written on shutdown" true (Sys.file_exists cache_path);
  with_daemon ~cache_path (fun conn ->
      let r = reply conn fast in
      check_bool "restarted daemon answers warm" true
        (J.member "cached" r = Some (J.Bool true));
      check_bool "warm payload identical across restart" true (strip_reply r = first_run);
      let stats = reply conn [ ("op", J.Str "stats") ] in
      check_bool "warm entries reported" true
        (match Option.bind (J.member "warm_entries" stats) J.int_opt with
        | Some n -> n >= 1
        | None -> false));
  (try
     if Sys.file_exists cache_path then Sys.remove cache_path;
     Unix.rmdir dir
   with Sys_error _ | Unix.Unix_error _ -> ())

let daemon_empty_targets_default () =
  with_daemon (fun conn ->
      let q = reply conn [ ("op", J.Str "query"); ("detector", J.Str "greedy") ] in
      let snap = Lazy.force compiled in
      let expected = List.sort_uniq compare snap.Snap.default_targets in
      check_bool "defaults used" true
        (match Option.bind (J.member "targets" q) J.list_opt with
        | Some items -> List.filter_map J.string_opt items = expected
        | None -> false))

let () =
  Alcotest.run "rca_serve"
    [
      ( "jsonio",
        [
          Alcotest.test_case "roundtrip" `Quick json_roundtrip;
          Alcotest.test_case "unicode escapes" `Quick json_unicode_escapes;
          Alcotest.test_case "parse errors" `Quick json_errors;
          Alcotest.test_case "accessors" `Quick json_accessors;
        ] );
      ( "lru",
        [
          Alcotest.test_case "eviction order" `Quick lru_eviction_order;
          Alcotest.test_case "find promotes" `Quick lru_find_promotes;
          Alcotest.test_case "overwrite promotes" `Quick lru_overwrite_promotes;
          Alcotest.test_case "capacity one" `Quick lru_capacity_one;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "structural roundtrip" `Quick snapshot_structural_roundtrip;
          Alcotest.test_case "pipeline identical (masked)" `Quick
            (snapshot_pipeline_identical `Masked);
          Alcotest.test_case "pipeline identical (list)" `Quick
            (snapshot_pipeline_identical `List);
          Alcotest.test_case "describe" `Quick snapshot_describe;
          Alcotest.test_case "rejects damage" `Quick snapshot_rejects_damage;
          Alcotest.test_case "rejects payload damage" `Quick snapshot_rejects_payload_damage;
        ] );
      ( "cache",
        [
          Alcotest.test_case "roundtrip and invalidation" `Quick
            cache_roundtrip_and_invalidation;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "query and cache" `Quick daemon_query_and_cache;
          Alcotest.test_case "survives garbage" `Quick daemon_survives_garbage;
          Alcotest.test_case "concurrent out-of-order" `Quick daemon_concurrent_out_of_order;
          Alcotest.test_case "in-flight coalescing" `Quick daemon_inflight_coalescing;
          Alcotest.test_case "warm restart" `Quick daemon_warm_restart;
          Alcotest.test_case "empty targets use defaults" `Quick daemon_empty_targets_default;
        ] );
    ]
