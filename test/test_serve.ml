(* Tests for rca_serve: the JSON codec, the LRU cache, snapshot
   save/load round trips (the byte-identity contract: a pipeline run on
   a loaded snapshot equals one on the freshly built model, both
   engines), rejection of damaged snapshot files, and a forked
   query-daemon end-to-end exercise including garbage requests (the
   daemon must answer an error object and keep serving). *)

open Rca_experiments
module MG = Rca_metagraph.Metagraph
module G = Rca_graph
module Snap = Rca_serve.Snapshot
module Server = Rca_serve.Server
module Client = Rca_serve.Client
module Lru = Rca_serve.Lru
module J = Rca_serve.Jsonio

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* --- jsonio --------------------------------------------------------------------- *)

let json_roundtrip () =
  let cases =
    [
      "null";
      "true";
      "false";
      "0";
      "-17";
      "3.25";
      {|"plain"|};
      {|"es\"c\\ap\ne\td"|};
      "[]";
      "[1,2,3]";
      {|{"a":1,"b":[true,null],"c":{"d":"e"}}|};
    ]
  in
  List.iter
    (fun s ->
      match J.of_string s with
      | Error msg -> Alcotest.failf "%s failed to parse: %s" s msg
      | Ok v -> check_string s s (J.to_string v))
    cases

let json_unicode_escapes () =
  (match J.of_string {|"Aé€"|} with
  | Ok (J.Str s) -> check_string "utf8" "A\xc3\xa9\xe2\x82\xac" s
  | _ -> Alcotest.fail "unicode escapes");
  (* surrogate pair -> one supplementary code point *)
  match J.of_string {|"😀"|} with
  | Ok (J.Str s) -> check_string "surrogate pair" "\xf0\x9f\x98\x80" s
  | _ -> Alcotest.fail "surrogate pair"

let json_errors () =
  List.iter
    (fun s ->
      match J.of_string s with
      | Ok v -> Alcotest.failf "%S should not parse, got %s" s (J.to_string v)
      | Error _ -> ())
    [
      "";
      "{";
      "[1,2";
      "{\"a\":}";
      "tru";
      "nul";
      "\"unterminated";
      "\"bad \\q escape\"";
      "01extra";
      "1 2";
      "{\"a\":1,}";
      "[1,]";
      "nan";
      "\"ctrl \x01 char\"";
    ]

let json_accessors () =
  let v = Result.get_ok (J.of_string {|{"n":5,"s":"x","l":[1],"f":2.5}|}) in
  check_bool "member" true (J.member "n" v = Some (J.Num 5.0));
  check_bool "absent member" true (J.member "zz" v = None);
  check_bool "int_opt" true (Option.bind (J.member "n" v) J.int_opt = Some 5);
  check_bool "int_opt rejects float" true (Option.bind (J.member "f" v) J.int_opt = None);
  check_bool "string_opt" true (Option.bind (J.member "s" v) J.string_opt = Some "x");
  check_bool "list_opt" true (Option.bind (J.member "l" v) J.list_opt = Some [ J.Num 1.0 ]);
  check_string "escaped key printing" {|{"a\nb":1}|} (J.to_string (J.Obj [ ("a\nb", J.num 1) ]))

(* --- lru ------------------------------------------------------------------------- *)

let lru_eviction_order () =
  let c = Lru.create 3 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  Lru.add c "c" 3;
  check_int "full" 3 (Lru.length c);
  Lru.add c "d" 4;
  (* "a" was least recent *)
  check_bool "a evicted" true (Lru.find c "a" = None);
  check_int "still capacity" 3 (Lru.length c);
  check_int "evictions" 1 (Lru.evictions c)

let lru_find_promotes () =
  let c = Lru.create 3 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  Lru.add c "c" 3;
  check_bool "hit a" true (Lru.find c "a" = Some 1);
  Lru.add c "d" 4;
  (* "b" is now the least recent, "a" was promoted by the find *)
  check_bool "b evicted" true (Lru.find c "b" = None);
  check_bool "a survives" true (Lru.find c "a" = Some 1);
  check_bool "most recent first" true (fst (List.hd (Lru.to_list c)) = "a")

let lru_overwrite_promotes () =
  let c = Lru.create 2 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  Lru.add c "a" 10;
  Lru.add c "c" 3;
  check_bool "b evicted" true (Lru.find c "b" = None);
  check_bool "a overwritten" true (Lru.find c "a" = Some 10);
  check_int "length" 2 (Lru.length c)

let lru_capacity_one () =
  let c = Lru.create 1 in
  Lru.add c 1 "x";
  Lru.add c 2 "y";
  check_bool "only latest" true (Lru.find c 2 = Some "y" && Lru.find c 1 = None);
  Alcotest.check_raises "zero capacity rejected"
    (Invalid_argument "Lru.create: capacity must be positive") (fun () ->
      ignore (Lru.create 0))

(* --- snapshot fixtures ------------------------------------------------------------ *)

(* One tiny-scale GOFFGRATCH model compiled the way `rca_main compile`
   does it: fixture + selection + bug nodes + freeze. *)
let compiled =
  lazy
    (let config = Rca_synth.Config.tiny in
     let spec = Experiments.goffgratch in
     let fixture = Fixture.make ~inject:spec.Harness.inject config in
     let p = Harness.default_params config in
     let sel = Harness.select_affected spec p fixture in
     let bug_nodes = Fixture.bug_nodes fixture ~canonicals:spec.Harness.bug_canonicals in
     let mg = fixture.Fixture.mg in
     let keep_modules =
       if spec.Harness.restrict_to_cam then
         Some
           (Array.to_list mg.MG.node_meta
           |> List.map (fun nd -> nd.MG.module_)
           |> List.sort_uniq compare
           |> List.filter Rca_synth.Outputs.is_cam_module)
       else None
     in
     {
       Snap.version = Snap.current_version;
       fingerprint = "test tiny GOFFGRATCH";
       scale = "tiny";
       experiment = spec.Harness.name;
       mg;
       frozen = Rca_core.Frozen.freeze mg.MG.graph;
       keep_modules;
       bug_nodes;
       default_targets = sel.Harness.sel_affected;
     })

let saved_bytes =
  lazy
    (let snap = Lazy.force compiled in
     let path = Filename.temp_file "rca_snap_test" ".rcasnap" in
     Snap.save path snap;
     let ic = open_in_bin path in
     let data = really_input_string ic (in_channel_length ic) in
     close_in ic;
     Sys.remove path;
     data)

let load_bytes data =
  let path = Filename.temp_file "rca_snap_test" ".rcasnap" in
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc;
  let r = Snap.load path in
  Sys.remove path;
  r

let sorted_bindings tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

(* --- snapshot round trip ----------------------------------------------------------- *)

let snapshot_structural_roundtrip () =
  let snap = Lazy.force compiled in
  let loaded =
    match load_bytes (Lazy.force saved_bytes) with
    | Ok s -> s
    | Error msg -> Alcotest.failf "load failed: %s" msg
  in
  check_string "fingerprint" snap.Snap.fingerprint loaded.Snap.fingerprint;
  check_string "scale" snap.Snap.scale loaded.Snap.scale;
  check_string "experiment" snap.Snap.experiment loaded.Snap.experiment;
  check_bool "keep_modules" true (snap.Snap.keep_modules = loaded.Snap.keep_modules);
  check_bool "bug_nodes" true (snap.Snap.bug_nodes = loaded.Snap.bug_nodes);
  check_bool "default_targets" true (snap.Snap.default_targets = loaded.Snap.default_targets);
  let a = snap.Snap.mg and b = loaded.Snap.mg in
  check_bool "node_meta" true (a.MG.node_meta = b.MG.node_meta);
  check_int "graph n" (G.Digraph.n a.MG.graph) (G.Digraph.n b.MG.graph);
  check_int "graph m" (G.Digraph.m a.MG.graph) (G.Digraph.m b.MG.graph);
  (* both list orders must survive verbatim — the determinism contract *)
  check_bool "succ and pred orders" true
    (G.Digraph.adjacency a.MG.graph = G.Digraph.adjacency b.MG.graph);
  check_bool "by_key" true (sorted_bindings a.MG.by_key = sorted_bindings b.MG.by_key);
  (* by_canonical is rebuilt, not deserialized: per-name id lists must
     still match exactly, order included *)
  check_bool "by_canonical" true
    (sorted_bindings a.MG.by_canonical = sorted_bindings b.MG.by_canonical);
  check_bool "io_map" true (sorted_bindings a.MG.io_map = sorted_bindings b.MG.io_map);
  check_bool "edge_origins" true
    (sorted_bindings a.MG.edge_origins = sorted_bindings b.MG.edge_origins);
  check_bool "stats" true (a.MG.stats = b.MG.stats);
  (* the reconstructed frozen CSR must be bitwise identical to freezing
     the original graph *)
  let fa = snap.Snap.frozen and fb = loaded.Snap.frozen in
  check_bool "csr row" true (fa.Rca_core.Frozen.csr.G.Csr.row = fb.Rca_core.Frozen.csr.G.Csr.row);
  check_bool "csr col" true (fa.Rca_core.Frozen.csr.G.Csr.col = fb.Rca_core.Frozen.csr.G.Csr.col);
  check_bool "csr src" true (fa.Rca_core.Frozen.csr.G.Csr.src = fb.Rca_core.Frozen.csr.G.Csr.src);
  check_bool "csr rev" true (fa.Rca_core.Frozen.csr.G.Csr.rev = fb.Rca_core.Frozen.csr.G.Csr.rev);
  check_bool "transpose row" true
    (fa.Rca_core.Frozen.rev.G.Csr.row = fb.Rca_core.Frozen.rev.G.Csr.row);
  check_bool "transpose col" true
    (fa.Rca_core.Frozen.rev.G.Csr.col = fb.Rca_core.Frozen.rev.G.Csr.col)

let strip t =
  ( t.Rca_core.Pipeline.slice.Rca_core.Slice.nodes,
    t.Rca_core.Pipeline.slice.Rca_core.Slice.targets,
    List.map
      (fun it ->
        Rca_core.Refine.
          (it.nodes, it.communities, it.sampled_by_community, it.sampled, it.detected))
      t.Rca_core.Pipeline.result.Rca_core.Refine.iterations,
    t.Rca_core.Pipeline.result.Rca_core.Refine.final_nodes,
    t.Rca_core.Pipeline.result.Rca_core.Refine.outcome )

(* The tentpole property: a pipeline run on the loaded snapshot is
   byte-identical to one on the freshly built model, on both engines. *)
let snapshot_pipeline_identical engine () =
  let snap = Lazy.force compiled in
  let loaded =
    match load_bytes (Lazy.force saved_bytes) with
    | Ok s -> s
    | Error msg -> Alcotest.failf "load failed: %s" msg
  in
  let keep_module m =
    match snap.Snap.keep_modules with None -> true | Some ms -> List.mem m ms
  in
  let targets = List.sort_uniq compare snap.Snap.default_targets in
  let run (s : Snap.t) =
    Rca_core.Pipeline.run ~keep_module ~min_cluster:4 ~m_sample:10 ~gn_approx:128
      ~stop_size:30 ~engine ~frozen:s.Snap.frozen s.Snap.mg ~outputs:targets
      ~detect:(Rca_core.Detector.reachability s.Snap.mg ~bug_nodes:s.Snap.bug_nodes)
  in
  let orig = run snap and reloaded = run loaded in
  check_bool "pipeline results identical" true (strip orig = strip reloaded);
  check_bool "candidates identical" true
    (Rca_core.Pipeline.candidates snap.Snap.mg orig
    = Rca_core.Pipeline.candidates loaded.Snap.mg reloaded);
  check_bool "located bugs identical" true
    (Rca_core.Pipeline.located_bugs snap.Snap.mg orig ~bug_nodes:snap.Snap.bug_nodes
    = Rca_core.Pipeline.located_bugs loaded.Snap.mg reloaded ~bug_nodes:loaded.Snap.bug_nodes)

let snapshot_describe () =
  let snap = Lazy.force compiled in
  let path = Filename.temp_file "rca_snap_test" ".rcasnap" in
  Snap.save path snap;
  (match Snap.describe path with
  | Ok (fp, scale, experiment) ->
      check_string "fingerprint" snap.Snap.fingerprint fp;
      check_string "scale" "tiny" scale;
      check_string "experiment" snap.Snap.experiment experiment
  | Error msg -> Alcotest.failf "describe failed: %s" msg);
  Sys.remove path

(* --- snapshot rejection ------------------------------------------------------------- *)

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  at 0

let expect_error ~substr data =
  match load_bytes data with
  | Ok _ -> Alcotest.failf "damaged snapshot loaded (wanted error with %S)" substr
  | Error msg ->
      if not (contains_substring msg substr) then
        Alcotest.failf "error %S does not mention %S" msg substr

let snapshot_rejects_damage () =
  let data = Lazy.force saved_bytes in
  let flip s i =
    let b = Bytes.of_string s in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
    Bytes.to_string b
  in
  expect_error ~substr:"shorter than the fixed header" (String.sub data 0 10);
  expect_error ~substr:"payload shorter" (String.sub data 0 (String.length data / 2));
  expect_error ~substr:"bad magic" (flip data 0);
  expect_error ~substr:"snapshot version" (flip data 8);
  expect_error ~substr:"checksum mismatch" (flip data 40);
  expect_error ~substr:"trailing bytes" (data ^ "x");
  (* empty and non-snapshot files *)
  expect_error ~substr:"shorter than the fixed header" "";
  expect_error ~substr:"bad magic" (String.make 64 'j');
  check_bool "pristine bytes still load" true (Result.is_ok (load_bytes data))

(* --- forked daemon end to end ------------------------------------------------------- *)

let with_daemon f =
  let snap = Lazy.force compiled in
  let dir = Filename.temp_file "rca_serve_test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let sock = Filename.concat dir "rca.sock" in
  flush stdout;
  flush stderr;
  let child =
    match Unix.fork () with
    | 0 ->
        (try ignore (Server.serve ~cache_capacity:8 (`Unix sock) snap) with _ -> ());
        Unix._exit 0
    | pid -> pid
  in
  let rec connect attempts =
    match Client.connect (`Unix sock) with
    | conn -> conn
    | exception Unix.Unix_error _ when attempts > 0 ->
        Unix.sleepf 0.05;
        connect (attempts - 1)
  in
  let conn = connect 100 in
  Fun.protect
    ~finally:(fun () ->
      ignore (Client.request conn (J.Obj [ ("op", J.Str "shutdown") ]));
      Client.close conn;
      ignore (Unix.waitpid [] child);
      (try
         if Sys.file_exists sock then Sys.remove sock;
         Unix.rmdir dir
       with Sys_error _ | Unix.Unix_error _ -> ()))
    (fun () -> f conn)

let reply conn fields =
  match Client.request conn (J.Obj fields) with
  | Ok r -> r
  | Error msg -> Alcotest.failf "request failed: %s" msg

let status r = Option.bind (J.member "status" r) J.string_opt

let daemon_query_and_cache () =
  with_daemon (fun conn ->
      let ping = reply conn [ ("op", J.Str "ping") ] in
      check_bool "ping ok" true (status ping = Some "ok");
      let q = [ ("op", J.Str "query"); ("detector", J.Str "greedy") ] in
      let first = reply conn q in
      check_bool "query ok" true (status first = Some "ok");
      check_bool "first not cached" true (J.member "cached" first = Some (J.Bool false));
      let second = reply conn q in
      check_bool "repeat cached" true (J.member "cached" second = Some (J.Bool true));
      (* identical payloads modulo the per-request fields *)
      let strip_reply r =
        match r with
        | J.Obj fields ->
            List.filter
              (fun (k, _) -> k <> "cached" && k <> "coalesced" && k <> "elapsed_ms")
              fields
        | _ -> Alcotest.fail "reply not an object"
      in
      check_bool "cached reply identical" true (strip_reply first = strip_reply second);
      check_bool "locates the injected bug" true
        (match Option.bind (J.member "located_bugs" first) J.list_opt with
        | Some (_ :: _) -> true
        | _ -> false))

let daemon_survives_garbage () =
  with_daemon (fun conn ->
      (* raw non-JSON bytes: an error object, not a dropped connection *)
      Client.send_line conn "this is {{{ not json";
      (match Client.recv conn with
      | Ok r ->
          check_bool "garbage -> error reply" true (status r = Some "error");
          check_bool "error names the parse failure" true
            (match Option.bind (J.member "error" r) J.string_opt with
            | Some msg -> String.length msg > 0
            | None -> false)
      | Error msg -> Alcotest.failf "no reply to garbage: %s" msg);
      let bad_cases =
        [
          [ ("op", J.Str "query"); ("detector", J.Str "bogus") ];
          [ ("op", J.Str "query"); ("engine", J.Str "bogus") ];
          [ ("op", J.Str "query"); ("targets", J.Arr [ J.Str "NO_SUCH_OUTPUT" ]) ];
          [ ("op", J.Str "query"); ("targets", J.Str "not-an-array") ];
          [ ("op", J.Str "launch-missiles") ];
        ]
      in
      List.iter
        (fun fields ->
          let r = reply conn fields in
          check_bool "bad request -> error reply" true (status r = Some "error"))
        bad_cases;
      (* the daemon is still alive and still answers good requests *)
      let ping = reply conn [ ("op", J.Str "ping"); ("id", J.num 9) ] in
      check_bool "ping after garbage" true (status ping = Some "ok");
      check_bool "id echoed" true (J.member "id" ping = Some (J.Num 9.0));
      let stats = reply conn [ ("op", J.Str "stats") ] in
      check_bool "errors counted" true
        (match Option.bind (J.member "errors" stats) J.int_opt with
        | Some e -> e = 6
        | None -> false))

let daemon_empty_targets_default () =
  with_daemon (fun conn ->
      let q = reply conn [ ("op", J.Str "query"); ("detector", J.Str "greedy") ] in
      let snap = Lazy.force compiled in
      let expected = List.sort_uniq compare snap.Snap.default_targets in
      check_bool "defaults used" true
        (match Option.bind (J.member "targets" q) J.list_opt with
        | Some items -> List.filter_map J.string_opt items = expected
        | None -> false))

let () =
  Alcotest.run "rca_serve"
    [
      ( "jsonio",
        [
          Alcotest.test_case "roundtrip" `Quick json_roundtrip;
          Alcotest.test_case "unicode escapes" `Quick json_unicode_escapes;
          Alcotest.test_case "parse errors" `Quick json_errors;
          Alcotest.test_case "accessors" `Quick json_accessors;
        ] );
      ( "lru",
        [
          Alcotest.test_case "eviction order" `Quick lru_eviction_order;
          Alcotest.test_case "find promotes" `Quick lru_find_promotes;
          Alcotest.test_case "overwrite promotes" `Quick lru_overwrite_promotes;
          Alcotest.test_case "capacity one" `Quick lru_capacity_one;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "structural roundtrip" `Quick snapshot_structural_roundtrip;
          Alcotest.test_case "pipeline identical (masked)" `Quick
            (snapshot_pipeline_identical `Masked);
          Alcotest.test_case "pipeline identical (list)" `Quick
            (snapshot_pipeline_identical `List);
          Alcotest.test_case "describe" `Quick snapshot_describe;
          Alcotest.test_case "rejects damage" `Quick snapshot_rejects_damage;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "query and cache" `Quick daemon_query_and_cache;
          Alcotest.test_case "survives garbage" `Quick daemon_survives_garbage;
          Alcotest.test_case "empty targets use defaults" `Quick daemon_empty_targets_default;
        ] );
    ]
