(* Differential + property-test lockdown of the domain-pool parallel
   centrality paths (Pool, Betweenness ?pool, Community ?pool,
   Centrality.eigenvector ?pool, Refine ?domains).

   Parallel reductions are a classic source of silent nondeterminism, so
   every parallel code path is tested three ways:
   - differentially against the sequential reference (floats within 1e-9,
     partitions identical), including the edge cases: empty graph,
     edgeless graph, disconnected graph, self-loops;
   - for determinism: the same parallel computation run twice, and run at
     different domain counts (2 vs 4), must agree bitwise — the fixed
     chunk structure plus chunk-ordered tree reduction guarantees it;
   - end to end: Refine.refine ~domains:4 must reproduce the sequential
     final node set on the tiny model fixture. *)

open Rca_graph

(* Spawn the pools once for the whole suite — the pool is designed to be
   reused, and these tests exercise exactly that. *)
let pool2 = Pool.create 2
let pool4 = Pool.create 4
let () = at_exit (fun () -> Pool.shutdown pool2; Pool.shutdown pool4)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- comparison helpers ------------------------------------------------------- *)

let close ?(eps = 1e-9) a b = abs_float (a -. b) <= eps *. (1.0 +. abs_float b)

let float_arrays_close ?eps a b =
  Array.length a = Array.length b
  && (let ok = ref true in
      Array.iteri (fun i x -> if not (close ?eps x b.(i)) then ok := false) a;
      !ok)

let table_sorted tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

let tables_close ?eps a b =
  let a = table_sorted a and b = table_sorted b in
  List.length a = List.length b
  && List.for_all2 (fun (k, v) (k', v') -> k = k' && close ?eps v v') a b

(* --- Pool unit tests ----------------------------------------------------------- *)

let pool_size_clamped () =
  Pool.with_pool 0 (fun p -> check_int "clamped to 1" 1 (Pool.size p));
  check_int "pool2" 2 (Pool.size pool2);
  check_int "pool4" 4 (Pool.size pool4)

let pool_run_chunks_in_order () =
  (* results must come back indexed by chunk id, whatever the schedule *)
  let r = Pool.run_chunks pool4 ~chunks:100 (fun c -> c * c) in
  check_int "100 chunks" 100 (Array.length r);
  Array.iteri (fun i v -> check_int "chunk result in slot" (i * i) v) r;
  Alcotest.(check (array int)) "zero chunks" [||] (Pool.run_chunks pool4 ~chunks:0 (fun c -> c))

let pool_run_chunks_more_chunks_than_domains () =
  (* all chunks are processed even when they outnumber the domains *)
  let total = Atomic.make 0 in
  ignore
    (Pool.run_chunks pool2 ~chunks:37 (fun c -> Atomic.fetch_and_add total c));
  check_int "sum of chunk ids" (37 * 36 / 2) (Atomic.get total)

let pool_propagates_exception () =
  Alcotest.check_raises "worker exception reaches the caller"
    (Failure "chunk 3") (fun () ->
      ignore
        (Pool.run_chunks pool4 ~chunks:8 (fun c ->
             if c = 3 then failwith "chunk 3" else c)));
  (* and the pool is still usable afterwards *)
  let r = Pool.run_chunks pool4 ~chunks:4 (fun c -> c + 1) in
  Alcotest.(check (array int)) "pool alive after exception" [| 1; 2; 3; 4 |] r

let pool_tree_reduce_deterministic () =
  Alcotest.(check (option int)) "empty" None (Pool.tree_reduce ( + ) [||]);
  Alcotest.(check (option int)) "singleton" (Some 7) (Pool.tree_reduce ( + ) [| 7 |]);
  Alcotest.(check (option int)) "sum" (Some 15) (Pool.tree_reduce ( + ) [| 1; 2; 4; 8 |]);
  (* the reduction shape is fixed: record the combination order via strings *)
  let shape =
    Pool.tree_reduce (fun a b -> "(" ^ a ^ b ^ ")") [| "a"; "b"; "c"; "d"; "e" |]
  in
  Alcotest.(check (option string)) "fixed shape" (Some "(((ab)(cd))e)") shape

let with_pool_shuts_down () =
  (* with_pool must shut the pool down even when the body raises *)
  Alcotest.check_raises "body exception propagates" (Failure "boom") (fun () ->
      Pool.with_pool 3 (fun p ->
          ignore (Pool.run_chunks p ~chunks:2 (fun c -> c));
          failwith "boom"))

(* --- edge-case unit tests (empty / edgeless / disconnected / self-loops) ------- *)

let empty_graph_all_paths () =
  let g = Digraph.create () in
  Alcotest.(check (array (float 1e-12))) "node bc" [||]
    (Betweenness.node_betweenness ~pool:pool4 g);
  check_int "edge bc" 0 (Hashtbl.length (Betweenness.edge_betweenness ~pool:pool4 g));
  Alcotest.(check (array (float 1e-12))) "eigenvector" [||]
    (Centrality.eigenvector ~pool:pool4 g);
  let step = Community.girvan_newman_step ~pool:pool4 g in
  check_int "no communities" 0 (Community.community_count step.Community.partition)

(* The Betweenness.create_acc regression: an edgeless graph used to
   request a size-0 table (2 * m = 0); the size is now clamped. *)
let edgeless_graph_betweenness () =
  let g = Digraph.of_edges ~n:5 [] in
  check_int "m" 0 (Digraph.m g);
  let acc = Betweenness.create_acc g in
  check_int "acc nodes" 5 (Array.length acc.Betweenness.node_bc);
  check_int "acc edges empty" 0 (Hashtbl.length acc.Betweenness.edge_bc);
  let seq = Betweenness.node_betweenness ~normalized:false g in
  let par = Betweenness.node_betweenness ~normalized:false ~pool:pool4 g in
  Alcotest.(check (array (float 1e-12))) "all zero seq" (Array.make 5 0.0) seq;
  Alcotest.(check (array (float 1e-12))) "all zero par" (Array.make 5 0.0) par;
  check_int "no edges scored" 0 (Hashtbl.length (Betweenness.edge_betweenness ~pool:pool2 g))

let disconnected_graph_partition () =
  (* two triangles plus an isolated node *)
  let g =
    Digraph.of_edges ~n:7 [ (0, 1); (1, 2); (2, 0); (3, 4); (4, 5); (5, 3) ]
  in
  let seq = (Community.girvan_newman ~target:3 g).Community.partition in
  let par = (Community.girvan_newman ~target:3 ~pool:pool4 g).Community.partition in
  Alcotest.(check (array int)) "labels identical" seq.Community.labels par.Community.labels;
  check_bool "betweenness agrees" true
    (tables_close (Betweenness.edge_betweenness g) (Betweenness.edge_betweenness ~pool:pool4 g))

let self_loop_graph_differential () =
  let g = Digraph.of_edges ~n:4 [ (0, 0); (0, 1); (1, 2); (2, 2); (2, 3); (3, 3) ] in
  let seq = Betweenness.node_betweenness ~normalized:false g in
  let par = Betweenness.node_betweenness ~normalized:false ~pool:pool2 g in
  check_bool "node bc agrees" true (float_arrays_close seq par);
  check_bool "edge bc agrees" true
    (tables_close (Betweenness.edge_betweenness g) (Betweenness.edge_betweenness ~pool:pool2 g))

(* --- QCheck differential properties -------------------------------------------- *)

(* Random digraphs via Gen.gnm, optionally decorated with self-loops. *)
let graph_gen =
  QCheck2.Gen.(
    let* n = int_range 2 40 in
    let* m = int_range 0 (n * 3) in
    let* seed = int_range 0 1_000_000 in
    let* loops = list_size (int_range 0 3) (int_range 0 (n - 1)) in
    return
      (let g = Gen.gnm ~seed ~n ~m in
       List.iter (fun v -> Digraph.add_edge g v v) loops;
       g))

let pools = [ ("2 domains", pool2); ("4 domains", pool4) ]

let prop_node_betweenness_differential =
  QCheck2.Test.make ~name:"parallel node betweenness = sequential (1e-9)" ~count:60
    graph_gen (fun g ->
      let seq = Betweenness.node_betweenness ~normalized:false g in
      List.for_all
        (fun (_, pool) ->
          float_arrays_close seq (Betweenness.node_betweenness ~normalized:false ~pool g))
        pools)

let prop_edge_betweenness_differential =
  QCheck2.Test.make ~name:"parallel edge betweenness = sequential (1e-9)" ~count:60
    graph_gen (fun g ->
      let seq = Betweenness.edge_betweenness g in
      List.for_all
        (fun (_, pool) -> tables_close seq (Betweenness.edge_betweenness ~pool g))
        pools)

let prop_girvan_newman_differential =
  QCheck2.Test.make ~name:"parallel Girvan-Newman partition = sequential" ~count:40
    graph_gen (fun g ->
      let seq = (Community.girvan_newman ~target:2 g).Community.partition in
      List.for_all
        (fun (_, pool) ->
          let par = (Community.girvan_newman ~target:2 ~pool g).Community.partition in
          seq.Community.labels = par.Community.labels
          && seq.Community.communities = par.Community.communities)
        pools)

let prop_girvan_newman_approx_differential =
  QCheck2.Test.make ~name:"parallel sampled G-N partition = sequential" ~count:40
    graph_gen (fun g ->
      let seq = Community.girvan_newman_step ~approx:8 g in
      List.for_all
        (fun (_, pool) ->
          let par = Community.girvan_newman_step ~approx:8 ~pool g in
          seq.Community.partition.Community.labels
            = par.Community.partition.Community.labels
          && seq.Community.removed_edges = par.Community.removed_edges)
        pools)

let prop_eigenvector_differential =
  QCheck2.Test.make ~name:"parallel eigenvector = sequential (1e-6)" ~count:60 graph_gen
    (fun g ->
      let seq = Centrality.eigenvector ~direction:Centrality.In g in
      List.for_all
        (fun (_, pool) ->
          float_arrays_close ~eps:1e-6 seq
            (Centrality.eigenvector ~direction:Centrality.In ~pool g))
        pools)

(* --- determinism regressions ---------------------------------------------------- *)

(* The same parallel computation, run twice and at different domain
   counts, must agree bitwise: work-stealing decides who computes a
   chunk, never what is computed or in which order it is merged. *)
let prop_parallel_bitwise_deterministic =
  QCheck2.Test.make ~name:"parallel runs bitwise-identical (repeat + 2 vs 4 domains)"
    ~count:40 graph_gen (fun g ->
      let eb pool = table_sorted (Betweenness.edge_betweenness ~pool g) in
      let bc pool = Betweenness.node_betweenness ~normalized:false ~pool g in
      let labels pool =
        (Community.girvan_newman ~target:2 ~pool g).Community.partition.Community.labels
      in
      eb pool4 = eb pool4
      && eb pool2 = eb pool4
      && bc pool2 = bc pool4
      && labels pool4 = labels pool4
      && labels pool2 = labels pool4)

let gn_labels_stable_across_runs () =
  let g = Gen.two_clusters ~seed:11 ~size:10 ~p_intra:0.4 ~bridges:2 in
  let run pool = (Community.girvan_newman_step ~pool g).Community.partition.Community.labels in
  let first = run pool4 in
  for _ = 1 to 5 do
    Alcotest.(check (array int)) "labels bitwise stable" first (run pool4)
  done;
  Alcotest.(check (array int)) "2 domains = 4 domains" first (run pool2)

(* --- Refine end-to-end ------------------------------------------------------------ *)

module Fixture = Rca_experiments.Fixture

let tiny_fixture = lazy (Fixture.make Rca_synth.Config.tiny)

let refine_result ?gn_approx ?domains detect =
  let fixture = Lazy.force tiny_fixture in
  let mg = fixture.Fixture.mg in
  let slice = Rca_core.Slice.of_outputs mg [ "aqsnow"; "cloud" ] in
  Rca_core.Refine.refine ?gn_approx ?domains mg ~initial:slice.Rca_core.Slice.nodes
    ~detect ~stop_size:2 ~max_iterations:3

let refine_domains_matches_sequential () =
  let seq = refine_result Rca_core.Detector.never in
  let par = refine_result ~domains:4 Rca_core.Detector.never in
  Alcotest.(check (list int)) "final nodes" seq.Rca_core.Refine.final_nodes
    par.Rca_core.Refine.final_nodes;
  check_bool "same outcome" true
    (seq.Rca_core.Refine.outcome = par.Rca_core.Refine.outcome);
  Alcotest.(check (list (list int))) "same sampling trace"
    (List.map (fun it -> it.Rca_core.Refine.sampled) seq.Rca_core.Refine.iterations)
    (List.map (fun it -> it.Rca_core.Refine.sampled) par.Rca_core.Refine.iterations)

let refine_domains_matches_sequential_approx () =
  (* the sampled-betweenness configuration the paper-scale harness uses *)
  let seq = refine_result ~gn_approx:16 Rca_core.Detector.never in
  let par = refine_result ~gn_approx:16 ~domains:2 Rca_core.Detector.never in
  Alcotest.(check (list int)) "final nodes" seq.Rca_core.Refine.final_nodes
    par.Rca_core.Refine.final_nodes

let refine_domains_deterministic () =
  let a = refine_result ~domains:4 Rca_core.Detector.never in
  let b = refine_result ~domains:4 Rca_core.Detector.never in
  Alcotest.(check (list int)) "two parallel runs identical"
    a.Rca_core.Refine.final_nodes b.Rca_core.Refine.final_nodes

let pipeline_engines_identical () =
  (* End to end on the tiny model fixture: slice, every iteration, final
     nodes, outcome and located bugs agree between the engines — with
     and without a reachability detector, and with static-dead pruning
     (mask flips vs materialized Prune.without_nodes) in play. *)
  let fixture = Lazy.force tiny_fixture in
  let mg = fixture.Fixture.mg in
  let dead =
    (* every sink node is a legitimate static-dead nomination *)
    List.filter
      (fun v -> Digraph.out_degree mg.Rca_metagraph.Metagraph.graph v = 0)
      (List.init (Rca_metagraph.Metagraph.n_nodes mg) Fun.id)
  in
  List.iter
    (fun (label, bug_nodes, static_dead) ->
      let detect =
        if bug_nodes = [] then Rca_core.Detector.never
        else Rca_core.Detector.reachability mg ~bug_nodes
      in
      let run engine =
        Rca_core.Pipeline.run ~min_cluster:2 ~stop_size:2 ~max_iterations:3 ~engine
          ~static_dead mg
          ~outputs:[ "aqsnow"; "cloud" ]
          ~detect
      in
      let a = run `List and b = run `Masked in
      Alcotest.(check (list int))
        (label ^ ": slice nodes")
        a.Rca_core.Pipeline.slice.Rca_core.Slice.nodes
        b.Rca_core.Pipeline.slice.Rca_core.Slice.nodes;
      Alcotest.(check (list int))
        (label ^ ": slice targets")
        a.Rca_core.Pipeline.slice.Rca_core.Slice.targets
        b.Rca_core.Pipeline.slice.Rca_core.Slice.targets;
      check_bool (label ^ ": full refine result identical") true
        (a.Rca_core.Pipeline.result = b.Rca_core.Pipeline.result);
      Alcotest.(check (list int))
        (label ^ ": located bugs")
        (Rca_core.Pipeline.located_bugs mg a ~bug_nodes)
        (Rca_core.Pipeline.located_bugs mg b ~bug_nodes))
    [
      ("never", [], []);
      ("reachability", [ 0 ], []);
      ("static-dead", [ 0 ], dead);
    ]

(* --- masked engine = list engine -------------------------------------------------- *)

module MG = Rca_metagraph.Metagraph

(* A synthetic metagraph over a random digraph: enough metadata for
   Refine (module names, non-synthetic nodes) and for canonical-name
   slicing ("v<i>"), with none of the Fortran front end involved. *)
let synthetic_mg g =
  let n = Digraph.n g in
  let node_meta =
    Array.init n (fun i ->
        {
          MG.canonical = Printf.sprintf "v%d" i;
          unique = Printf.sprintf "v%d__m" i;
          module_ = (if i mod 3 = 0 then "phys" else "core");
          subprogram = "s";
          line = i;
          synthetic = false;
        })
  in
  let by_canonical = Hashtbl.create (max 1 n) in
  Array.iteri (fun i nd -> Hashtbl.replace by_canonical nd.MG.canonical [ i ]) node_meta;
  {
    MG.graph = g;
    node_meta;
    by_key = Hashtbl.create 1;
    by_canonical;
    io_map = Hashtbl.create 1;
    edge_origins = Hashtbl.create 1;
    stats =
      {
        MG.assignments_total = 0;
        parsed_primary = 0;
        parsed_relaxed = 0;
        parsed_scraped = 0;
        unhandled = 0;
      };
  }

(* Full-result equality between the engines: iteration sequences
   (nodes, edges, communities, sampling, detections), final node set and
   outcome — across random graphs, detectors, domain counts and exact vs
   sampled G-N.  This is the differential oracle for the masked engine. *)
let prop_refine_engines_identical =
  QCheck2.Test.make ~name:"masked refine = list refine (full result)" ~count:20
    graph_gen (fun g ->
      let mg = synthetic_mg g in
      let initial = List.init (Digraph.n g) Fun.id in
      let detectors =
        [
          Rca_core.Detector.never;
          Rca_core.Detector.of_differing_set
            (List.filter (fun v -> v mod 5 = 0) initial);
        ]
      in
      List.for_all
        (fun detect ->
          List.for_all
            (fun domains ->
              let run engine =
                Rca_core.Refine.refine ~engine ?domains mg ~initial ~detect
                  ~stop_size:2 ~max_iterations:4
              in
              run `List = run `Masked)
            [ None; Some 2 ])
        detectors)

let prop_refine_engines_identical_approx =
  QCheck2.Test.make ~name:"masked refine = list refine (sampled G-N)" ~count:15
    graph_gen (fun g ->
      let mg = synthetic_mg g in
      let initial = List.init (Digraph.n g) Fun.id in
      let run engine =
        Rca_core.Refine.refine ~engine ~gn_approx:8 ~domains:2 mg ~initial
          ~detect:Rca_core.Detector.never ~stop_size:2 ~max_iterations:3
      in
      run `List = run `Masked)

(* Slicing on canonical names over the synthetic metagraph: both engines,
   with module restriction, exclusions and cluster dropping in play; and
   [contains] must agree with list membership (the node_set lockdown). *)
let prop_slice_engines_identical =
  QCheck2.Test.make ~name:"masked slice = list slice (+ contains lockdown)" ~count:30
    graph_gen (fun g ->
      let mg = synthetic_mg g in
      let n = Digraph.n g in
      let internals = [ "v0"; Printf.sprintf "v%d" (n - 1) ] in
      let exclude = List.filter (fun v -> v mod 7 = 3) (List.init n Fun.id) in
      let run engine =
        Rca_core.Slice.of_internals
          ~keep_module:(fun m -> m <> "phys")
          ~min_cluster:2 ~engine ~exclude mg internals
      in
      let a = run `List and b = run `Masked in
      a.Rca_core.Slice.nodes = b.Rca_core.Slice.nodes
      && a.Rca_core.Slice.targets = b.Rca_core.Slice.targets
      && List.for_all
           (fun v ->
             Rca_core.Slice.contains b v = List.mem v b.Rca_core.Slice.nodes
             && Rca_core.Slice.contains a v = Rca_core.Slice.contains b v)
           (List.init n Fun.id))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_node_betweenness_differential;
      prop_edge_betweenness_differential;
      prop_girvan_newman_differential;
      prop_girvan_newman_approx_differential;
      prop_eigenvector_differential;
      prop_parallel_bitwise_deterministic;
    ]

let engine_qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_refine_engines_identical;
      prop_refine_engines_identical_approx;
      prop_slice_engines_identical;
    ]

let () =
  Alcotest.run "rca_parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "size clamped" `Quick pool_size_clamped;
          Alcotest.test_case "chunks in order" `Quick pool_run_chunks_in_order;
          Alcotest.test_case "chunks > domains" `Quick pool_run_chunks_more_chunks_than_domains;
          Alcotest.test_case "exception propagation" `Quick pool_propagates_exception;
          Alcotest.test_case "tree reduce" `Quick pool_tree_reduce_deterministic;
          Alcotest.test_case "with_pool cleanup" `Quick with_pool_shuts_down;
        ] );
      ( "edge cases",
        [
          Alcotest.test_case "empty graph" `Quick empty_graph_all_paths;
          Alcotest.test_case "edgeless graph (create_acc clamp)" `Quick
            edgeless_graph_betweenness;
          Alcotest.test_case "disconnected graph" `Quick disconnected_graph_partition;
          Alcotest.test_case "self loops" `Quick self_loop_graph_differential;
        ] );
      ("differential", qcheck_cases);
      ( "determinism",
        [
          Alcotest.test_case "G-N labels stable across runs" `Quick
            gn_labels_stable_across_runs;
        ] );
      ( "refine",
        [
          Alcotest.test_case "domains:4 = sequential" `Quick refine_domains_matches_sequential;
          Alcotest.test_case "domains:2 + approx = sequential" `Quick
            refine_domains_matches_sequential_approx;
          Alcotest.test_case "domains:4 deterministic" `Quick refine_domains_deterministic;
        ] );
      ( "engine",
        Alcotest.test_case "pipeline masked = list (incl. located bugs)" `Quick
          pipeline_engines_identical
        :: engine_qcheck_cases );
    ]
