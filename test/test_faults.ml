(* Tests for the fault-injection campaign stack: the occurrence-aware
   injection API, the mined corpus's invariants, scorecard determinism,
   Pipeline.located_bugs edge cases, and coverage on zero-trip loops and
   unreachable code. *)

open Rca_synth
open Rca_faults
module MG = Rca_metagraph.Metagraph

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let tiny = Config.tiny
let srcs = lazy (Model.generate tiny)
let fixture = lazy (Rca_experiments.Fixture.make tiny)

let raises_invalid f =
  match f () with
  | exception Invalid_argument _ -> true
  | _ -> false

let file_text s file = List.assoc file s.Model.files

(* a synthetic one-file source tree so the tests control the text exactly *)
let toy text = { (Lazy.force srcs) with Model.files = [ ("toy.F90", text) ] }

(* --- Model.inject occurrence policy ---------------------------------------- *)

let inject_absent_pattern () =
  check_bool "absent pattern raises" true
    (raises_invalid (fun () ->
         Model.inject ~file:"toy.F90" ~from_:"missing" ~to_:"x" (toy "a b c")));
  check_bool "unknown file raises" true
    (raises_invalid (fun () ->
         Model.inject ~file:"nope.F90" ~from_:"a" ~to_:"x" (toy "a")))

let inject_duplicate_requires_occurrence () =
  let s = toy "x = 1.0\ny = 1.0\n" in
  check_bool "ambiguous pattern raises" true
    (raises_invalid (fun () -> Model.inject ~file:"toy.F90" ~from_:"1.0" ~to_:"2.0" s));
  let first = Model.inject ~occurrence:`First ~file:"toy.F90" ~from_:"1.0" ~to_:"2.0" s in
  check_string "first only" "x = 2.0\ny = 1.0\n" (file_text first "toy.F90");
  let second =
    Model.inject ~occurrence:(`Nth 2) ~file:"toy.F90" ~from_:"1.0" ~to_:"2.0" s
  in
  check_string "second only" "x = 1.0\ny = 2.0\n" (file_text second "toy.F90");
  let all = Model.inject ~occurrence:`All ~file:"toy.F90" ~from_:"1.0" ~to_:"2.0" s in
  check_string "all" "x = 2.0\ny = 2.0\n" (file_text all "toy.F90");
  check_bool "out-of-range occurrence raises" true
    (raises_invalid (fun () ->
         Model.inject ~occurrence:(`Nth 3) ~file:"toy.F90" ~from_:"1.0" ~to_:"2.0" s))

let inject_overlapping_counted_without_overlap () =
  (* "aaaa" holds two non-overlapping "aa" (positions 0 and 2), not three *)
  let s = toy "aaaa" in
  check_bool "two occurrences are ambiguous" true
    (raises_invalid (fun () -> Model.inject ~file:"toy.F90" ~from_:"aa" ~to_:"b" s));
  let second = Model.inject ~occurrence:(`Nth 2) ~file:"toy.F90" ~from_:"aa" ~to_:"b" s in
  check_string "second non-overlapping occurrence" "aab" (file_text second "toy.F90");
  check_bool "third occurrence does not exist" true
    (raises_invalid (fun () ->
         Model.inject ~occurrence:(`Nth 3) ~file:"toy.F90" ~from_:"aa" ~to_:"b" s));
  (* "aaa" in "aaaa" occurs exactly once under the same scan *)
  let once = Model.inject ~file:"toy.F90" ~from_:"aaa" ~to_:"b" s in
  check_string "single occurrence needs no policy" "ba" (file_text once "toy.F90")

let inject_line_contract () =
  let s = toy "one\ntwo\nthree\n" in
  let patched =
    Model.inject_line ~file:"toy.F90" ~line:2 ~f:(fun l -> "! " ^ l) s
  in
  check_string "line rewritten" "one\n! two\nthree\n" (file_text patched "toy.F90");
  check_bool "unknown file raises" true
    (raises_invalid (fun () ->
         Model.inject_line ~file:"nope.F90" ~line:1 ~f:(fun l -> l ^ "x") s));
  check_bool "line out of range raises" true
    (raises_invalid (fun () ->
         Model.inject_line ~file:"toy.F90" ~line:99 ~f:(fun l -> l ^ "x") s));
  check_bool "no-op rewrite raises" true
    (raises_invalid (fun () -> Model.inject_line ~file:"toy.F90" ~line:2 ~f:Fun.id s))

(* --- corpus invariants ------------------------------------------------------ *)

let corpus = lazy (Corpus.generate (Corpus.default_params tiny))

let corpus_meets_campaign_floor () =
  let c = Lazy.force corpus in
  let faults = c.Corpus.faults in
  check_bool "at least 25 faults" true (List.length faults >= 25);
  let families =
    List.sort_uniq compare (List.map (fun f -> f.Fault.family) faults)
  in
  check_bool "at least 5 families" true (List.length families >= 5)

let corpus_ids_unique_and_ground_truth_resolves () =
  let c = Lazy.force corpus in
  let faults = c.Corpus.faults in
  let ids = List.map (fun f -> f.Fault.id) faults in
  check_int "unique ids" (List.length ids) (List.length (List.sort_uniq compare ids));
  let mg = c.Corpus.fixture.Rca_experiments.Fixture.mg in
  List.iter
    (fun f ->
      check_bool
        (f.Fault.id ^ " ground truth resolves on the clean metagraph")
        true
        (Fault.resolve_expected mg f <> []);
      (* source faults name a real file and line; config faults neither *)
      if Fault.is_source_fault f then begin
        let text = file_text (Lazy.force srcs) f.Fault.file in
        let n_lines = List.length (String.split_on_char '\n' text) in
        check_bool (f.Fault.id ^ " line in range") true
          (f.Fault.line >= 1 && f.Fault.line <= n_lines)
      end
      else check_int (f.Fault.id ^ " config fault has no line") 0 f.Fault.line)
    faults

let corpus_same_seed_identical () =
  let p = Corpus.default_params tiny in
  let a = Corpus.generate p and b = Corpus.generate p in
  check_bool "same fault ids in the same order" true
    (List.map (fun f -> f.Fault.id) a.Corpus.faults
    = List.map (fun f -> f.Fault.id) b.Corpus.faults)

let corpus_injections_apply () =
  let c = Lazy.force corpus in
  List.iter
    (fun f ->
      if Fault.is_source_fault f then
        let bugged = f.Fault.inject (Lazy.force srcs) in
        check_bool (f.Fault.id ^ " changes the source") true
          (file_text bugged f.Fault.file <> file_text (Lazy.force srcs) f.Fault.file))
    c.Corpus.faults

(* Satellite acceptance: the intent_guard family must be visible to the
   static call-contract checker — injecting the fault and re-linting with
   strict types flags at least one call site passing a protected actual
   into the now-written formal. *)
let intent_guard_flagged_by_callcheck () =
  let module A = Rca_analysis.Analysis in
  let module D = Rca_analysis.Diagnostics in
  let c = Lazy.force corpus in
  let guards =
    List.filter (fun f -> f.Fault.family = Fault.Intent_guard) c.Corpus.faults
  in
  check_bool "corpus mined intent_guard faults" true (guards <> []);
  let fx = Lazy.force fixture in
  let trips (f : Fault.t) =
    let bugged = f.Fault.inject fx.Rca_experiments.Fixture.clean_sources in
    let an = A.analyze ~strict_types:true (Model.parse_program bugged) in
    List.exists (fun d -> d.D.kind = D.Intent_at_call_site) an.A.diags
  in
  let flagged = List.filter trips guards in
  check_bool "at least one fault trips the call-site intent check" true (flagged <> []);
  (* the clean model must not: zero strict errors without a fault *)
  let clean = A.analyze ~strict_types:true (Model.parse_program fx.Rca_experiments.Fixture.clean_sources) in
  check_int "clean model has no strict errors" 0 (List.length (A.errors clean))

(* --- campaign determinism --------------------------------------------------- *)

let mini_params () =
  let p = Campaign.default_params tiny in
  {
    p with
    Campaign.corpus =
      {
        p.Campaign.corpus with
        Corpus.families = [ Fault.Prng; Fault.Intent_guard ];
        Corpus.max_per_family = 2;
      };
  }

let campaign_same_seed_byte_identical () =
  let p = mini_params () in
  let a = Campaign.run p and b = Campaign.run p in
  let sa = Campaign.scorecard_json a and sb = Campaign.scorecard_json b in
  check_bool "non-empty corpus" true (a.Campaign.results <> []);
  check_int "no crashes" 0 a.Campaign.overall.Campaign.fs_crashed;
  check_string "byte-identical scorecards" sa sb

(* --- Pipeline.located_bugs edge cases --------------------------------------- *)

(* A pipeline value with an explicit final set and per-iteration
   detections: located_bugs is a pure membership question over those. *)
let mk_pipeline mg ~final ~detected_per_iteration =
  let open Rca_core in
  let slice =
    { Slice.mg; nodes = final; targets = []; node_set = Hashtbl.create 4 }
  in
  let iteration detected =
    {
      Refine.nodes = final;
      n_nodes = List.length final;
      n_edges = 0;
      communities = [ final ];
      sampled_by_community = [ detected ];
      sampled = detected;
      detected;
    }
  in
  {
    Pipeline.slice;
    result =
      {
        Refine.iterations = List.map iteration detected_per_iteration;
        final_nodes = final;
        outcome = Refine.Converged;
      };
  }

let located_bugs_empty_bug_set () =
  let mg = (Lazy.force fixture).Rca_experiments.Fixture.mg in
  let pl = mk_pipeline mg ~final:[ 1; 2; 3 ] ~detected_per_iteration:[ [ 1 ] ] in
  check_bool "empty bug set locates nothing" true
    (Rca_core.Pipeline.located_bugs mg pl ~bug_nodes:[] = [])

let located_bugs_outside_slice () =
  let mg = (Lazy.force fixture).Rca_experiments.Fixture.mg in
  let pl = mk_pipeline mg ~final:[ 1; 2; 3 ] ~detected_per_iteration:[ [ 2 ] ] in
  (* a bug node that survived in neither the final set nor any detection *)
  check_bool "bug outside the slice is not located" true
    (Rca_core.Pipeline.located_bugs mg pl ~bug_nodes:[ 10_000 ] = [])

let located_bugs_multiple_in_one_community () =
  let mg = (Lazy.force fixture).Rca_experiments.Fixture.mg in
  let pl = mk_pipeline mg ~final:[ 4; 5; 6 ] ~detected_per_iteration:[ [] ] in
  (* both bugs sit in the single final community; input order is kept *)
  check_bool "both located, order preserved" true
    (Rca_core.Pipeline.located_bugs mg pl ~bug_nodes:[ 6; 4 ] = [ 6; 4 ])

let located_bugs_detected_only () =
  let mg = (Lazy.force fixture).Rca_experiments.Fixture.mg in
  let pl = mk_pipeline mg ~final:[] ~detected_per_iteration:[ [ 7 ]; [] ] in
  check_bool "a sampled-and-detected bug counts as located" true
    (Rca_core.Pipeline.located_bugs mg pl ~bug_nodes:[ 7 ] = [ 7 ])

(* --- coverage: zero-trip loops and unreachable code -------------------------- *)

let cov_src =
  {|module covmod
  real(r8) :: acc
contains
  subroutine go()
    integer :: i
    acc = 0.0_r8
    do i = 1, 0
      acc = acc + 1.0_r8
    end do
    if (acc > 100.0_r8) then
      acc = acc + 2.0_r8
    end if
  end subroutine go
  subroutine never()
    acc = acc + 3.0_r8
  end subroutine never
end module covmod
|}

(* physical line numbers in [cov_src] *)
let line_init = 6
let line_zero_trip_body = 8
let line_dead_branch = 11
let line_never_body = 15

let cov_report = lazy (
  let prog = Rca_fortran.Parser.parse_file ~strict:true ~file:"covmod.F90" cov_src in
  let machine = Rca_interp.Machine.create prog in
  let cov =
    Rca_coverage.Coverage.record
      ~drive:(fun m ->
        ignore (Rca_interp.Machine.invoke m ~module_:"covmod" ~sub:"go" ~args:[]))
      machine
  in
  (prog, cov))

let coverage_zero_trip_loop () =
  let _, cov = Lazy.force cov_report in
  let executed line =
    Rca_coverage.Coverage.line_executed cov ~module_:"covmod" ~sub:"go" ~line
  in
  check_bool "straight-line statement executed" true (executed line_init);
  check_bool "zero-trip loop body never executed" false (executed line_zero_trip_body);
  check_bool "false-branch body never executed" false (executed line_dead_branch)

let coverage_unreachable_subprogram () =
  let prog, cov = Lazy.force cov_report in
  check_bool "module executed" true (Rca_coverage.Coverage.module_executed cov "covmod");
  check_bool "called subprogram executed" true
    (Rca_coverage.Coverage.subprogram_executed cov ~module_:"covmod" ~sub:"go");
  check_bool "uncalled subprogram not executed" false
    (Rca_coverage.Coverage.subprogram_executed cov ~module_:"covmod" ~sub:"never");
  check_bool "unreachable body line not executed" false
    (Rca_coverage.Coverage.line_executed cov ~module_:"covmod" ~sub:"never"
       ~line:line_never_body);
  let rep = Rca_coverage.Coverage.report prog cov in
  check_int "one of two subprograms executed" 1
    rep.Rca_coverage.Coverage.subprograms_executed;
  check_int "two subprograms total" 2 rep.Rca_coverage.Coverage.subprograms_total;
  let filtered = Rca_coverage.Coverage.filter_program prog cov in
  match filtered with
  | [ m ] ->
      check_bool "filtered program keeps only the executed subprogram" true
        (List.exists (fun s -> s.Rca_fortran.Ast.s_name = "go")
           m.Rca_fortran.Ast.m_subprograms
        && not
             (List.exists
                (fun s ->
                  s.Rca_fortran.Ast.s_name = "never"
                  && s.Rca_fortran.Ast.s_body <> [])
                m.Rca_fortran.Ast.m_subprograms))
  | _ -> Alcotest.fail "expected one module after filtering"

(* --- score_sets ---------------------------------------------------------------- *)

(* The hash-set scorer must equal the quadratic List.mem reference on
   every input, including duplicate candidates (deduped) and duplicate
   expected entries (recall still divides by the raw expected length). *)
let score_sets_reference ~expected ~candidates =
  let cands = List.sort_uniq compare candidates in
  let inter = List.length (List.filter (fun c -> List.mem c expected) cands) in
  let ratio num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den in
  let precision = ratio inter (List.length cands) in
  let recall = ratio inter (List.length expected) in
  let f1 =
    if precision +. recall = 0.0 then 0.0
    else 2.0 *. precision *. recall /. (precision +. recall)
  in
  (precision, recall, f1)

let score_triple s =
  Rca_faults.Campaign.(s.precision, s.recall, s.f1)

let score_sets_matches_reference () =
  let cases =
    [
      ([], []);
      ([ "a" ], []);
      ([], [ "a" ]);
      ([ "a"; "b" ], [ "b"; "a" ]);
      ([ "a"; "b"; "c" ], [ "b"; "b"; "d"; "b" ]);
      ([ "a"; "a"; "b" ], [ "a" ]);  (* duplicate expected entries *)
      ([ "x" ], [ "y"; "z" ]);
    ]
  in
  List.iter
    (fun (expected, candidates) ->
      Alcotest.(check (triple (float 0.0) (float 0.0) (float 0.0)))
        (Printf.sprintf "expected=[%s] candidates=[%s]" (String.concat ";" expected)
           (String.concat ";" candidates))
        (score_sets_reference ~expected ~candidates)
        (score_triple (Rca_faults.Campaign.score_sets ~expected ~candidates)))
    cases

let score_sets_qcheck =
  QCheck.Test.make ~name:"score_sets = List.mem reference" ~count:500
    QCheck.(pair (small_list (int_bound 20)) (small_list (int_bound 20)))
    (fun (expected, candidates) ->
      score_sets_reference ~expected ~candidates
      = score_triple (Rca_faults.Campaign.score_sets ~expected ~candidates))

(* --- suite ------------------------------------------------------------------- *)

let () =
  Alcotest.run "rca_faults"
    [
      ( "inject",
        [
          Alcotest.test_case "absent pattern" `Quick inject_absent_pattern;
          Alcotest.test_case "duplicate pattern" `Quick inject_duplicate_requires_occurrence;
          Alcotest.test_case "overlapping pattern" `Quick
            inject_overlapping_counted_without_overlap;
          Alcotest.test_case "inject_line contract" `Quick inject_line_contract;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "campaign floor" `Quick corpus_meets_campaign_floor;
          Alcotest.test_case "ids and ground truth" `Quick
            corpus_ids_unique_and_ground_truth_resolves;
          Alcotest.test_case "same-seed determinism" `Quick corpus_same_seed_identical;
          Alcotest.test_case "injections apply" `Quick corpus_injections_apply;
          Alcotest.test_case "intent_guard visible to callcheck" `Quick
            intent_guard_flagged_by_callcheck;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "same-seed scorecards byte-identical" `Slow
            campaign_same_seed_byte_identical;
        ] );
      ( "score",
        [
          Alcotest.test_case "score_sets reference cases" `Quick score_sets_matches_reference;
          QCheck_alcotest.to_alcotest score_sets_qcheck;
        ] );
      ( "located_bugs",
        [
          Alcotest.test_case "empty bug set" `Quick located_bugs_empty_bug_set;
          Alcotest.test_case "bug outside slice" `Quick located_bugs_outside_slice;
          Alcotest.test_case "multiple bugs, one community" `Quick
            located_bugs_multiple_in_one_community;
          Alcotest.test_case "detected-only bug" `Quick located_bugs_detected_only;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "zero-trip loop" `Quick coverage_zero_trip_loop;
          Alcotest.test_case "unreachable code" `Quick coverage_unreachable_subprogram;
        ] );
    ]
