(* Tests for rca_stats (descriptive, matrix/eigen, PCA, lasso logistic,
   variable selection) and rca_ect (the UF-ECT substitute). *)

open Rca_stats

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))
let checkf tol = Alcotest.(check (float tol))

(* --- Descriptive -------------------------------------------------------------- *)

let basic_moments () =
  let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  check_float "mean" 5.0 (Descriptive.mean xs);
  checkf 1e-9 "variance (sample)" (32.0 /. 7.0) (Descriptive.variance xs);
  check_float "median" 4.5 (Descriptive.median xs)

let quantiles () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_float "q0" 1.0 (Descriptive.quantile xs 0.0);
  check_float "q1" 5.0 (Descriptive.quantile xs 1.0);
  check_float "median" 3.0 (Descriptive.quantile xs 0.5);
  check_float "q25" 2.0 (Descriptive.quantile xs 0.25);
  (* interpolation *)
  check_float "q10" 1.4 (Descriptive.quantile xs 0.1)

let quantile_unsorted_input () =
  let xs = [| 5.0; 1.0; 3.0; 2.0; 4.0 |] in
  check_float "median of unsorted" 3.0 (Descriptive.median xs)

let iqr_overlap_cases () =
  let a = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  let b = [| 3.0; 4.0; 5.0; 6.0; 7.0 |] in
  let c = [| 100.0; 101.0; 102.0; 103.0 |] in
  check_bool "overlapping" true (Descriptive.iqr_overlap a b);
  check_bool "disjoint" false (Descriptive.iqr_overlap a c)

let standardize_degenerate () =
  check_float "zero std centers only" 2.0 (Descriptive.standardize ~mean:3.0 ~std:0.0 5.0);
  check_float "normal" 2.0 (Descriptive.standardize ~mean:1.0 ~std:2.0 5.0)

let empty_rejected () =
  Alcotest.check_raises "mean" (Invalid_argument "Descriptive.mean: empty") (fun () ->
      ignore (Descriptive.mean [||]))

let quantile_nan_rejected () =
  Alcotest.check_raises "nan input" (Invalid_argument "Descriptive.quantile: NaN input")
    (fun () -> ignore (Descriptive.quantile [| 1.0; Float.nan; 3.0 |] 0.5));
  Alcotest.check_raises "all nan" (Invalid_argument "Descriptive.quantile: NaN input")
    (fun () -> ignore (Descriptive.quantile [| Float.nan |] 0.0))

let quantile_single_element () =
  let xs = [| 42.0 |] in
  check_float "q0" 42.0 (Descriptive.quantile xs 0.0);
  check_float "q0.5" 42.0 (Descriptive.quantile xs 0.5);
  check_float "q1" 42.0 (Descriptive.quantile xs 1.0)

let quantile_float_ordering () =
  (* Negative zero, infinities and subnormals must rank by IEEE value
     order — Float.compare, not the polymorphic compare on boxed
     floats. *)
  let xs = [| 0.0; -0.0; Float.infinity; Float.neg_infinity; 1e-310; -1.0 |] in
  check_float "min is -inf" Float.neg_infinity (Descriptive.quantile xs 0.0);
  check_float "max is +inf" Float.infinity (Descriptive.quantile xs 1.0);
  (* sorted: [-inf; -1; -0; 0; 1e-310; +inf]; median interpolates
     between -0 and 0 *)
  check_float "median" 0.0 (Descriptive.quantile xs 0.5)

(* --- Matrix / eigen ------------------------------------------------------------- *)

let matmul_known () =
  let a = [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = [| [| 5.0; 6.0 |]; [| 7.0; 8.0 |] |] in
  let c = Matrix.matmul a b in
  check_float "c00" 19.0 c.(0).(0);
  check_float "c01" 22.0 c.(0).(1);
  check_float "c10" 43.0 c.(1).(0);
  check_float "c11" 50.0 c.(1).(1)

let transpose_involution () =
  let a = Matrix.init ~rows:3 ~cols:2 (fun i j -> float_of_int ((10 * i) + j)) in
  Alcotest.(check bool) "tt = id" true (Matrix.transpose (Matrix.transpose a) = a)

let covariance_known () =
  (* two perfectly correlated columns *)
  let d = [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |]; [| 3.0; 6.0 |] |] in
  let c = Matrix.covariance d in
  check_float "var x" 1.0 c.(0).(0);
  check_float "cov xy" 2.0 c.(0).(1);
  check_float "var y" 4.0 c.(1).(1)

let jacobi_diagonal () =
  let m = [| [| 3.0; 0.0 |]; [| 0.0; 1.0 |] |] in
  let e = Matrix.jacobi_eigen m in
  check_float "ev0" 3.0 e.Matrix.values.(0);
  check_float "ev1" 1.0 e.Matrix.values.(1)

let jacobi_known_2x2 () =
  (* [[2,1],[1,2]] has eigenvalues 3 and 1 *)
  let m = [| [| 2.0; 1.0 |]; [| 1.0; 2.0 |] |] in
  let e = Matrix.jacobi_eigen m in
  checkf 1e-9 "ev0" 3.0 e.Matrix.values.(0);
  checkf 1e-9 "ev1" 1.0 e.Matrix.values.(1);
  (* eigenvector for 3 is (1,1)/sqrt2 up to sign *)
  let v = e.Matrix.vectors.(0) in
  checkf 1e-9 "components equal" 0.0 (abs_float v.(0) -. abs_float v.(1))

let jacobi_reconstructs () =
  (* A = V diag(values) V^T for a random symmetric matrix *)
  let rng = Rca_rng.Splitmix.create 99 in
  let p = 6 in
  let base =
    Matrix.init ~rows:p ~cols:p (fun _ _ -> Rca_rng.Prng.float01 rng -. 0.5)
  in
  let sym = Matrix.init ~rows:p ~cols:p (fun i j -> base.(i).(j) +. base.(j).(i)) in
  let e = Matrix.jacobi_eigen sym in
  (* reconstruct *)
  let recon =
    Matrix.init ~rows:p ~cols:p (fun i j ->
        let s = ref 0.0 in
        for k = 0 to p - 1 do
          s := !s +. (e.Matrix.values.(k) *. e.Matrix.vectors.(k).(i) *. e.Matrix.vectors.(k).(j))
        done;
        !s)
  in
  for i = 0 to p - 1 do
    for j = 0 to p - 1 do
      checkf 1e-8 "reconstruction" sym.(i).(j) recon.(i).(j)
    done
  done

let jacobi_orthonormal () =
  let m = [| [| 4.0; 1.0; 0.5 |]; [| 1.0; 3.0; 0.25 |]; [| 0.5; 0.25; 2.0 |] |] in
  let e = Matrix.jacobi_eigen m in
  for a = 0 to 2 do
    for b = 0 to 2 do
      let dot = ref 0.0 in
      for i = 0 to 2 do
        dot := !dot +. (e.Matrix.vectors.(a).(i) *. e.Matrix.vectors.(b).(i))
      done;
      checkf 1e-9 "orthonormal" (if a = b then 1.0 else 0.0) !dot
    done
  done

(* --- PCA ------------------------------------------------------------------------- *)

let pca_finds_dominant_direction () =
  (* data along the (1,1) direction with small noise in (1,-1) *)
  let rng = Rca_rng.Splitmix.create 3 in
  let n = 200 in
  let data =
    Matrix.init ~rows:n ~cols:2 (fun _ j ->
        ignore j;
        0.0)
  in
  for i = 0 to n - 1 do
    let t = Rca_rng.Prng.gaussian rng in
    let noise = 0.05 *. Rca_rng.Prng.gaussian rng in
    data.(i).(0) <- t +. noise;
    data.(i).(1) <- t -. noise
  done;
  let p = Pca.fit data in
  (* first component close to (1,1)/sqrt2 in standardized space *)
  let c = p.Pca.components.(0) in
  checkf 1e-2 "balanced loading" 0.0 (abs_float c.(0) -. abs_float c.(1));
  check_bool "explains most variance" true
    (p.Pca.explained.(0) > 10.0 *. p.Pca.explained.(1))

let pca_scores_centered () =
  let rng = Rca_rng.Splitmix.create 17 in
  let n = 50 and p = 4 in
  let data =
    Matrix.init ~rows:n ~cols:p (fun _ _ -> (10.0 *. Rca_rng.Prng.float01 rng) +. 5.0)
  in
  let model = Pca.fit data in
  let scores = Pca.transform model data in
  for k = 0 to model.Pca.n_components - 1 do
    let col = Array.init n (fun i -> scores.(i).(k)) in
    checkf 1e-8 "score mean 0" 0.0 (Descriptive.mean col)
  done

let pca_limits_components () =
  let data = Matrix.init ~rows:5 ~cols:10 (fun i j -> float_of_int ((i * j) + i)) in
  let p = Pca.fit data in
  check_bool "components <= n-1" true (p.Pca.n_components <= 4)

(* --- Logistic lasso ------------------------------------------------------------------ *)

(* synthetic classification: y determined by feature 0 only *)
let make_classification ~seed ~n ~p ~informative_shift =
  let rng = Rca_rng.Splitmix.create seed in
  let x =
    Matrix.init ~rows:(2 * n) ~cols:p (fun _ _ -> Rca_rng.Prng.gaussian rng)
  in
  let y = Array.init (2 * n) (fun i -> if i < n then 0.0 else 1.0) in
  for i = n to (2 * n) - 1 do
    x.(i).(0) <- x.(i).(0) +. informative_shift
  done;
  (x, y)

let logistic_learns_separation () =
  let x, y = make_classification ~seed:5 ~n:60 ~p:4 ~informative_shift:4.0 in
  let m = Logistic.fit ~lambda:0.01 x y in
  let correct = ref 0 in
  Array.iteri (fun i row -> if Logistic.predict m row = y.(i) then incr correct) x;
  check_bool "accuracy > 90%" true (float_of_int !correct /. 120.0 > 0.9)

let lasso_zeroes_noise_features () =
  let x, y = make_classification ~seed:7 ~n:80 ~p:8 ~informative_shift:5.0 in
  let m = Logistic.fit_select ~target:1 x y in
  let nz = Logistic.nonzero_features m in
  check_bool "feature 0 survives" true (List.mem 0 nz);
  check_bool "small support" true (List.length nz <= 3)

let lambda_max_kills_everything () =
  let x, y = make_classification ~seed:11 ~n:40 ~p:5 ~informative_shift:3.0 in
  let lmax = Logistic.lambda_max x y in
  let m = Logistic.fit ~lambda:(2.0 *. lmax) x y in
  check_int "no features" 0 (List.length (Logistic.nonzero_features m))

let fit_select_hits_target () =
  (* several informative features with decreasing strength *)
  let rng = Rca_rng.Splitmix.create 23 in
  let n = 80 and p = 12 in
  let x = Matrix.init ~rows:(2 * n) ~cols:p (fun _ _ -> Rca_rng.Prng.gaussian rng) in
  let y = Array.init (2 * n) (fun i -> if i < n then 0.0 else 1.0) in
  for i = n to (2 * n) - 1 do
    for j = 0 to 7 do
      x.(i).(j) <- x.(i).(j) +. (4.0 /. float_of_int (j + 1))
    done
  done;
  let m = Logistic.fit_select ~target:5 x y in
  let k = List.length (Logistic.nonzero_features m) in
  check_bool "support near 5" true (k >= 2 && k <= 8)

(* --- Select -------------------------------------------------------------------------- *)

let names4 = [| "wsub"; "omega"; "flds"; "qrl" |]

let shifted_data ~shift_col ~shift =
  let rng = Rca_rng.Splitmix.create 31 in
  let mk rows extra =
    Matrix.init ~rows ~cols:4 (fun _ j ->
        Rca_rng.Prng.gaussian rng +. (if j = shift_col then extra else 0.0))
  in
  (mk 40 0.0, mk 20 shift)

let median_distance_finds_shift () =
  let ens, exp_ = shifted_data ~shift_col:0 ~shift:8.0 in
  let ranked = Select.median_distance ~names:names4 ~ensemble:ens ~experimental:exp_ in
  (match ranked with
  | top :: _ ->
      Alcotest.(check string) "wsub first" "wsub" top.Select.name;
      check_bool "huge score" true (top.Select.score > 3.0)
  | [] -> Alcotest.fail "nothing selected");
  check_bool "few variables" true (List.length ranked <= 2)

let median_distance_empty_when_consistent () =
  let rng = Rca_rng.Splitmix.create 41 in
  let mk rows = Matrix.init ~rows ~cols:4 (fun _ _ -> Rca_rng.Prng.gaussian rng) in
  let ranked = Select.median_distance ~names:names4 ~ensemble:(mk 60) ~experimental:(mk 30) in
  (* consistent runs: overlapping IQRs everywhere, or at most a fluke *)
  check_bool "selects nothing (or a fluke)" true (List.length ranked <= 1)

let lasso_selection_finds_shift () =
  let ens, exp_ = shifted_data ~shift_col:2 ~shift:6.0 in
  let ranked = Select.lasso ~target:1 ~names:names4 ~ensemble:ens ~experimental:exp_ () in
  match ranked with
  | top :: _ -> Alcotest.(check string) "flds first" "flds" top.Select.name
  | [] -> Alcotest.fail "nothing selected"

let direct_comparison_flags_changes () =
  let member = [| 1.0; 2.0; 3.0; 4.0 |] in
  let experiment = [| 1.0; 2.0 +. 1e-6; 3.0; 4.0 |] in
  let ranked = Select.direct_comparison ~names:names4 ~member ~experiment () in
  Alcotest.(check (list string)) "only omega" [ "omega" ] (Select.names_of ranked)

let take_limits () =
  let ranked =
    [ Select.{ name = "a"; score = 3.0 }; { name = "b"; score = 2.0 }; { name = "c"; score = 1.0 } ]
  in
  Alcotest.(check (list string)) "take 2" [ "a"; "b" ] (Select.names_of (Select.take 2 ranked))

(* --- ECT ------------------------------------------------------------------------------ *)

let make_ensemble ~seed ~runs ~vars =
  let rng = Rca_rng.Splitmix.create seed in
  (* correlated structure: latent factors + noise, like climate fields *)
  Matrix.init ~rows:runs ~cols:vars (fun _ _ -> 0.0)
  |> Array.map (fun row ->
         let f1 = Rca_rng.Prng.gaussian rng and f2 = Rca_rng.Prng.gaussian rng in
         Array.mapi
           (fun j _ ->
             let w = float_of_int (j mod 3 + 1) /. 3.0 in
             (w *. f1) +. ((1.0 -. w) *. f2) +. (0.1 *. Rca_rng.Prng.gaussian rng))
           row)

let ect_passes_consistent_runs () =
  let vars = 8 in
  let names = Array.init vars (fun i -> Printf.sprintf "v%d" i) in
  let ens = make_ensemble ~seed:1 ~runs:60 ~vars in
  let t = Rca_ect.Ect.fit ~var_names:names ens in
  let test = make_ensemble ~seed:2 ~runs:3 ~vars in
  Alcotest.(check string) "pass" "Pass"
    (Rca_ect.Ect.verdict_string (Rca_ect.Ect.evaluate t test).Rca_ect.Ect.verdict)

let ect_fails_shifted_runs () =
  let vars = 8 in
  let names = Array.init vars (fun i -> Printf.sprintf "v%d" i) in
  let ens = make_ensemble ~seed:3 ~runs:60 ~vars in
  let t = Rca_ect.Ect.fit ~var_names:names ens in
  let test = make_ensemble ~seed:4 ~runs:3 ~vars in
  Array.iter (fun row -> row.(0) <- row.(0) +. 10.0; row.(3) <- row.(3) -. 8.0) test;
  let res = Rca_ect.Ect.evaluate t test in
  Alcotest.(check string) "fail" "Fail" (Rca_ect.Ect.verdict_string res.Rca_ect.Ect.verdict);
  check_bool "each run flags pcs" true
    (List.for_all (fun r -> r.Rca_ect.Ect.failing_pcs <> []) res.Rca_ect.Ect.runs)

let ect_failure_rate_bounds () =
  let vars = 6 in
  let names = Array.init vars (fun i -> Printf.sprintf "v%d" i) in
  let ens = make_ensemble ~seed:5 ~runs:50 ~vars in
  let t = Rca_ect.Ect.fit ~var_names:names ens in
  let good_pool = make_ensemble ~seed:6 ~runs:12 ~vars in
  let bad_pool = make_ensemble ~seed:7 ~runs:12 ~vars in
  Array.iter (fun row -> row.(1) <- row.(1) +. 12.0) bad_pool;
  let fr_good = Rca_ect.Ect.failure_rate t ~pool:good_pool ~trials:10 () in
  let fr_bad = Rca_ect.Ect.failure_rate t ~pool:bad_pool ~trials:10 () in
  check_bool "good rate low" true (fr_good <= 0.2);
  check_bool "bad rate high" true (fr_bad >= 0.8)

let ect_rejects_tiny_ensemble () =
  let names = [| "a"; "b" |] in
  Alcotest.check_raises "too small" (Invalid_argument "Ect.fit: ensemble too small")
    (fun () ->
      ignore (Rca_ect.Ect.fit ~var_names:names (Matrix.make ~rows:3 ~cols:2 0.0)))

(* --- qcheck properties ------------------------------------------------------------------ *)

let float_array_gen =
  QCheck2.Gen.(array_size (int_range 2 40) (float_bound_inclusive 100.0))

let prop_median_between_extremes =
  QCheck2.Test.make ~name:"median within [min,max]" ~count:300 float_array_gen (fun xs ->
      let m = Descriptive.median xs in
      let lo = Array.fold_left Float.min infinity xs in
      let hi = Array.fold_left Float.max neg_infinity xs in
      m >= lo -. 1e-9 && m <= hi +. 1e-9)

let prop_variance_nonneg =
  QCheck2.Test.make ~name:"variance nonnegative" ~count:300 float_array_gen (fun xs ->
      Descriptive.variance xs >= 0.0)

let prop_quantile_monotone =
  QCheck2.Test.make ~name:"quantile monotone in q" ~count:200 float_array_gen (fun xs ->
      Descriptive.quantile xs 0.25 <= Descriptive.quantile xs 0.75 +. 1e-12)

let prop_jacobi_trace_preserved =
  QCheck2.Test.make ~name:"eigenvalues sum to trace" ~count:100
    QCheck2.Gen.(pair (int_range 2 8) (int_range 0 100000))
    (fun (p, seed) ->
      let rng = Rca_rng.Splitmix.create seed in
      let b = Matrix.init ~rows:p ~cols:p (fun _ _ -> Rca_rng.Prng.float01 rng -. 0.5) in
      let sym = Matrix.init ~rows:p ~cols:p (fun i j -> b.(i).(j) +. b.(j).(i)) in
      let e = Matrix.jacobi_eigen sym in
      let trace = ref 0.0 and esum = ref 0.0 in
      for i = 0 to p - 1 do
        trace := !trace +. sym.(i).(i);
        esum := !esum +. e.Matrix.values.(i)
      done;
      abs_float (!trace -. !esum) < 1e-8)

let prop_soft_threshold_shrinks =
  QCheck2.Test.make ~name:"soft threshold shrinks towards zero" ~count:300
    QCheck2.Gen.(pair (float_bound_inclusive 10.0) (float_bound_inclusive 5.0))
    (fun (x, t) ->
      let t = abs_float t in
      let y = Logistic.soft_threshold x t in
      abs_float y <= abs_float x && (x = 0.0 || abs_float x > t || y = 0.0))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_median_between_extremes;
      prop_variance_nonneg;
      prop_quantile_monotone;
      prop_jacobi_trace_preserved;
      prop_soft_threshold_shrinks;
    ]

let () =
  Alcotest.run "rca_stats"
    [
      ( "descriptive",
        [
          Alcotest.test_case "moments" `Quick basic_moments;
          Alcotest.test_case "quantiles" `Quick quantiles;
          Alcotest.test_case "unsorted input" `Quick quantile_unsorted_input;
          Alcotest.test_case "iqr overlap" `Quick iqr_overlap_cases;
          Alcotest.test_case "standardize" `Quick standardize_degenerate;
          Alcotest.test_case "empty rejected" `Quick empty_rejected;
          Alcotest.test_case "quantile NaN rejected" `Quick quantile_nan_rejected;
          Alcotest.test_case "quantile single element" `Quick quantile_single_element;
          Alcotest.test_case "quantile float ordering" `Quick quantile_float_ordering;
        ] );
      ( "matrix",
        [
          Alcotest.test_case "matmul" `Quick matmul_known;
          Alcotest.test_case "transpose" `Quick transpose_involution;
          Alcotest.test_case "covariance" `Quick covariance_known;
          Alcotest.test_case "jacobi diagonal" `Quick jacobi_diagonal;
          Alcotest.test_case "jacobi 2x2" `Quick jacobi_known_2x2;
          Alcotest.test_case "jacobi reconstruction" `Quick jacobi_reconstructs;
          Alcotest.test_case "jacobi orthonormal" `Quick jacobi_orthonormal;
        ] );
      ( "pca",
        [
          Alcotest.test_case "dominant direction" `Quick pca_finds_dominant_direction;
          Alcotest.test_case "scores centered" `Quick pca_scores_centered;
          Alcotest.test_case "component limit" `Quick pca_limits_components;
        ] );
      ( "logistic",
        [
          Alcotest.test_case "learns separation" `Quick logistic_learns_separation;
          Alcotest.test_case "lasso sparsity" `Quick lasso_zeroes_noise_features;
          Alcotest.test_case "lambda max" `Quick lambda_max_kills_everything;
          Alcotest.test_case "target support" `Quick fit_select_hits_target;
        ] );
      ( "select",
        [
          Alcotest.test_case "median distance" `Quick median_distance_finds_shift;
          Alcotest.test_case "consistent -> empty" `Quick median_distance_empty_when_consistent;
          Alcotest.test_case "lasso selection" `Quick lasso_selection_finds_shift;
          Alcotest.test_case "direct comparison" `Quick direct_comparison_flags_changes;
          Alcotest.test_case "take" `Quick take_limits;
        ] );
      ( "ect",
        [
          Alcotest.test_case "passes consistent" `Quick ect_passes_consistent_runs;
          Alcotest.test_case "fails shifted" `Quick ect_fails_shifted_runs;
          Alcotest.test_case "failure rates" `Quick ect_failure_rate_bounds;
          Alcotest.test_case "tiny ensemble rejected" `Quick ect_rejects_tiny_ensemble;
        ] );
      ("properties", qcheck_cases);
    ]
