(* Second-wave tests: parser corner cases, interpreter semantics not
   covered by the first suite, graph algorithm variants, sampling stream
   semantics, and cross-library property tests. *)

open Rca_fortran
module G = Rca_graph
module MG = Rca_metagraph.Metagraph

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-12))

let parse ?(strict = true) src = Parser.parse_file ~strict ~file:"t.F90" src

(* --- parser corners ---------------------------------------------------------- *)

let double_precision_decl () =
  match parse "module m\ndouble precision :: x\nend module m" with
  | [ mu ] -> (
      match mu.Ast.m_decls with
      | [ d ] -> check_bool "treated as real" true (d.Ast.d_type = Ast.Treal)
      | _ -> Alcotest.fail "one decl expected")
  | _ -> Alcotest.fail "one module expected"

let dimension_attribute_skipped () =
  match parse "module m\nreal(r8), dimension(10) :: x\nend module m" with
  | [ mu ] -> check_int "decl parsed" 1 (List.length mu.Ast.m_decls)
  | _ -> Alcotest.fail "one module expected"

let multiple_entities_with_init () =
  match parse "module m\nreal(r8), parameter :: a = 1.0, b = 2.0, c = 3.0\nend module m" with
  | [ mu ] ->
      check_int "three decls" 3 (List.length mu.Ast.m_decls);
      check_bool "all params" true (List.for_all (fun d -> d.Ast.d_param) mu.Ast.m_decls)
  | _ -> Alcotest.fail "one module expected"

let elseif_single_token () =
  let src =
    "module m\nreal(r8) :: x\ncontains\nsubroutine s(v)\nreal(r8), intent(in) :: v\nif (v > 1.0) then\nx = 1.0\nelseif (v > 0.0) then\nx = 0.5\nelse\nx = 0.0\nend if\nend subroutine\nend module m"
  in
  match parse src with
  | [ mu ] -> (
      let s = List.hd mu.Ast.m_subprograms in
      match s.Ast.s_body with
      | [ { node = Ast.If (branches, els); _ } ] ->
          check_int "two branches" 2 (List.length branches);
          check_int "else" 1 (List.length els)
      | _ -> Alcotest.fail "expected if")
  | _ -> Alcotest.fail "one module expected"

let endif_enddo_single_tokens () =
  let src =
    "module m\nreal(r8) :: x\ncontains\nsubroutine s()\ninteger :: i\ndo i = 1, 3\nif (i == 2) then\nx = x + 1.0\nendif\nenddo\nend subroutine\nend module m"
  in
  match parse src with
  | [ mu ] -> check_int "parsed" 1 (List.length mu.Ast.m_subprograms)
  | _ -> Alcotest.fail "one module expected"

let pow_with_negative_exponent () =
  match Parser.parse_expression "a ** -2" with
  | Ast.Ebin (Ast.Pow, _, Ast.Eun (Ast.Neg, Ast.Eint 2)) -> ()
  | _ -> Alcotest.fail "expected pow with negated exponent"

let interface_with_explicit_body_skipped () =
  let src =
    "module m\ninterface\nsubroutine external_thing(x)\nreal(r8) :: x\nend subroutine\nend interface\nend module m"
  in
  match parse ~strict:false src with
  | [ mu ] -> check_int "anonymous interface recorded" 1 (List.length mu.Ast.m_interfaces)
  | _ -> Alcotest.fail "one module expected"

let print_statement_parses () =
  match (Parser.parse_statement "print *, 'value', x, 42").node with
  | Ast.Print [ Ast.Estring "value"; _; Ast.Eint 42 ] -> ()
  | _ -> Alcotest.fail "print parse"

let select_case_parses_and_prints () =
  let src =
    "module m\nreal(r8) :: x\ncontains\nsubroutine s(k)\ninteger, intent(in) :: k\nselect case (k)\ncase (1)\nx = 1.0\ncase (2, 3)\nx = 2.0\ncase default\nx = 0.0\nend select\nend subroutine\nend module m"
  in
  match parse src with
  | [ mu ] -> (
      let sp = List.hd mu.Ast.m_subprograms in
      match sp.Ast.s_body with
      | [ { node = Ast.Select (_, cases, default); _ } ] ->
          check_int "two cases" 2 (List.length cases);
          check_int "default" 1 (List.length default);
          (* pretty round trip *)
          let text = Pretty.module_to_string mu in
          (match parse text with
          | [ mu' ] ->
              check_int "round trip"
                (Ast.count_stmts (List.hd mu.Ast.m_subprograms).Ast.s_body)
                (Ast.count_stmts (List.hd mu'.Ast.m_subprograms).Ast.s_body)
          | _ -> Alcotest.fail "reparse")
      | _ -> Alcotest.fail "expected select")
  | _ -> Alcotest.fail "one module"

let count_stmts_recurses () =
  let src =
    "module m\nreal(r8) :: x\ncontains\nsubroutine s()\ninteger :: i\ndo i = 1, 2\nif (x > 0.0) then\nx = 1.0\nelse\nx = 2.0\nend if\nend do\nend subroutine\nend module m"
  in
  match parse src with
  | [ mu ] ->
      let s = List.hd mu.Ast.m_subprograms in
      (* do + if + two assignments *)
      check_int "statement count" 4 (Ast.count_stmts s.Ast.s_body)
  | _ -> Alcotest.fail "one module"

(* --- interpreter corners ------------------------------------------------------ *)

open Rca_interp

let run_src src entry =
  let m = Machine.create (parse src) in
  ignore (Machine.invoke m ~module_:"m" ~sub:entry ~args:[]);
  m

let getf m name =
  match Machine.get_module_var m ~module_:"m" ~name with
  | Machine.Vreal f -> f
  | Machine.Vint i -> float_of_int i
  | _ -> Alcotest.fail "scalar expected"

let select_case_executes () =
  let src =
    "module m\nreal(r8) :: x, y, z\ncontains\nsubroutine pick(k)\ninteger, intent(in) :: k\nselect case (k)\ncase (1)\nx = 10.0\ncase (2, 3)\nx = 20.0\ncase default\nx = -1.0\nend select\nend subroutine\nsubroutine go()\ncall pick(1)\ny = x\ncall pick(3)\nz = x\ncall pick(9)\nend subroutine\nend module m"
  in
  let m = run_src src "go" in
  check_float "case 1" 10.0 (getf m "y");
  check_float "case list" 20.0 (getf m "z");
  check_float "default" (-1.0) (getf m "x")

let select_case_in_metagraph () =
  let src =
    "module m\nreal(r8) :: x, a, b\ncontains\nsubroutine s(k)\ninteger, intent(in) :: k\nselect case (k)\ncase (1)\nx = a\ncase default\nx = b\nend select\nend subroutine\nend module m"
  in
  let mg = MG.build (parse src) in
  let find c = List.hd (MG.nodes_with_canonical mg c) in
  check_bool "a->x" true (G.Digraph.mem_edge mg.MG.graph (find "a") (find "x"));
  check_bool "b->x" true (G.Digraph.mem_edge mg.MG.graph (find "b") (find "x"))

let merge_and_sign () =
  let m =
    run_src
      "module m\nreal(r8) :: a, b, c\ncontains\nsubroutine go()\na = merge(1.0, 2.0, 3 > 2)\nb = sign(5.0, -0.1)\nc = mod(7.5, 2.0)\nend subroutine\nend module m"
      "go"
  in
  check_float "merge picks true branch" 1.0 (getf m "a");
  check_float "sign transfers" (-5.0) (getf m "b");
  check_float "float mod" 1.5 (getf m "c")

let nint_floor_int () =
  let m =
    run_src
      "module m\ninteger :: a, b, c\ncontains\nsubroutine go()\na = nint(2.6)\nb = floor(2.6)\nc = int(2.6)\nend subroutine\nend module m"
      "go"
  in
  check_float "nint rounds" 3.0 (getf m "a");
  check_float "floor" 2.0 (getf m "b");
  check_float "int truncates" 2.0 (getf m "c")

let string_comparison_in_if () =
  let m =
    run_src
      "module m\nreal(r8) :: x\ncharacter(len=8) :: name\ncontains\nsubroutine go()\nname = 'abc'\nif (name == 'abc') then\nx = 1.0\nelse\nx = 2.0\nend if\nend subroutine\nend module m"
      "go"
  in
  check_float "string equality" 1.0 (getf m "x")

let print_goes_to_log () =
  let m =
    run_src
      "module m\ncontains\nsubroutine go()\nprint *, 'hello', 42\nend subroutine\nend module m"
      "go"
  in
  Alcotest.(check string) "log" "hello 42\n" (Machine.printed m)

let whole_array_copy () =
  let m =
    run_src
      "module m\nreal(r8) :: a(3), b(3), total\ncontains\nsubroutine go()\ninteger :: i\ndo i = 1, 3\nb(i) = real(i)\nend do\na = b\ntotal = sum(a)\nend subroutine\nend module m"
      "go"
  in
  check_float "copied" 6.0 (getf m "total")

let nested_function_calls_execute () =
  let m =
    run_src
      {|
module m
  real(r8) :: out
contains
  function inner(x) result(r)
    real(r8), intent(in) :: x
    real(r8) :: r
    r = x + 1.0
  end function inner
  function outer(x) result(r)
    real(r8), intent(in) :: x
    real(r8) :: r
    r = inner(x) * 2.0
  end function outer
  subroutine go()
    out = outer(inner(1.0))
  end subroutine go
end module m
|}
      "go"
  in
  (* inner(1)=2; outer(2)=inner(2)*2=6 *)
  check_float "nested" 6.0 (getf m "out")

let formal_binding_fires_assign_hook () =
  let prog =
    parse
      "module m\nreal(r8) :: y\ncontains\nsubroutine callee(arg)\nreal(r8), intent(in) :: arg\ny = arg\nend subroutine\nsubroutine go()\ncall callee(3.5)\nend subroutine\nend module m"
  in
  let m = Machine.create prog in
  let seen = ref [] in
  m.Machine.hooks.Machine.on_assign <-
    Some (fun ~module_:_ ~sub ~line:_ ~var ~canonical:_ v -> seen := (sub, var, v) :: !seen);
  ignore (Machine.invoke m ~module_:"m" ~sub:"go" ~args:[]);
  check_bool "formal binding event" true (List.mem ("callee", "arg", 3.5) !seen)

let invoke_arity_checked () =
  let prog = parse "module m\ncontains\nsubroutine go(x)\nreal(r8), intent(in) :: x\nend subroutine\nend module m" in
  let m = Machine.create prog in
  match Machine.invoke m ~module_:"m" ~sub:"go" ~args:[] with
  | exception Machine.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected arity error"

(* --- graph variants -------------------------------------------------------------- *)

let katz_directions_differ () =
  let g = G.Gen.star ~n:6 in
  let kin = G.Centrality.katz ~direction:G.Centrality.In g in
  let kout = G.Centrality.katz ~direction:G.Centrality.Out g in
  check_bool "in: hub highest" true (kin.(0) > kin.(1));
  check_bool "out: hub lowest" true (kout.(0) < kout.(1))

let label_propagation_deterministic () =
  let g = G.Gen.two_clusters ~seed:5 ~size:10 ~p_intra:0.6 ~bridges:1 in
  let p1 = G.Community.label_propagation ~seed:9 g in
  let p2 = G.Community.label_propagation ~seed:9 g in
  check_bool "same labels" true (p1.G.Community.labels = p2.G.Community.labels)

let shortest_path_dag_multi_target () =
  (* 0->1->2 and 0->3: targets {2,3}.  Each target keeps its own shortest
     paths: 0->3 (distance 1) and 0->1->2 (distance 2) — the farther
     target's path nodes must appear, not just the globally nearest. *)
  let g = G.Digraph.of_edges ~n:4 [ (0, 1); (1, 2); (0, 3) ] in
  Alcotest.(check (list int)) "per-target shortest paths" [ 0; 1; 2; 3 ]
    (G.Traverse.shortest_path_dag_nodes g ~sources:[ 0 ] ~targets:[ 2; 3 ])

let girvan_newman_max_removals_budget () =
  let g = G.Gen.complete ~n:8 in
  (* with a budget of 1 removal a clique cannot split: partition stays whole *)
  let step = G.Community.girvan_newman_step ~max_removals:1 g in
  check_int "still one community" 1
    (G.Community.community_count step.G.Community.partition)

let louvain_splits_two_clusters () =
  let g = G.Gen.two_clusters ~seed:21 ~size:12 ~p_intra:0.6 ~bridges:2 in
  let p = G.Community.louvain g in
  let l = p.G.Community.labels in
  let coherent off = Array.for_all (fun v -> v = l.(off)) (Array.init 12 (fun i -> l.(off + i))) in
  check_bool "cluster A coherent" true (coherent 0);
  check_bool "cluster B coherent" true (coherent 12);
  check_bool "clusters separated" true (l.(0) <> l.(12))

let louvain_modularity_beats_trivial () =
  let g = G.Gen.two_clusters ~seed:33 ~size:10 ~p_intra:0.5 ~bridges:1 in
  let und = G.Digraph.to_undirected g in
  let p = G.Community.louvain g in
  let trivial = G.Community.of_components und in
  check_bool "higher modularity than one blob" true
    (G.Community.modularity und p > G.Community.modularity und trivial)

let louvain_deterministic () =
  let g = G.Gen.gnm ~seed:77 ~n:60 ~m:150 in
  let a = G.Community.louvain g and b = G.Community.louvain g in
  check_bool "same labels" true (a.G.Community.labels = b.G.Community.labels)

let refine_with_alternative_partitioners () =
  let mg =
    MG.build
      (parse
         "module m\nreal(r8) :: a, b, c, d, e, f\ncontains\nsubroutine s()\nb = a\nc = b + a\nd = c\ne = d + c\nf = e\nend subroutine\nend module m")
  in
  let initial = List.init (MG.n_nodes mg) (fun i -> i) in
  List.iter
    (fun partitioner ->
      let r =
        Rca_core.Refine.refine mg ~initial ~detect:Rca_core.Detector.never ~stop_size:1
          ~max_iterations:3 ~partitioner ~min_community:2
      in
      check_bool "terminates" true
        (List.length r.Rca_core.Refine.final_nodes <= List.length initial))
    [ Rca_core.Refine.Girvan_newman; Rca_core.Refine.Louvain; Rca_core.Refine.Label_propagation ]

(* --- stats corners ----------------------------------------------------------------- *)

let quantile_rejects_bad_q () =
  Alcotest.check_raises "q too big"
    (Invalid_argument "Descriptive.quantile: q out of range") (fun () ->
      ignore (Rca_stats.Descriptive.quantile [| 1.0 |] 1.5))

let pca_transform_shape () =
  let rng = Rca_rng.Splitmix.create 4 in
  let data =
    Rca_stats.Matrix.init ~rows:20 ~cols:6 (fun _ _ -> Rca_rng.Prng.gaussian rng)
  in
  let p = Rca_stats.Pca.fit ~n_components:3 data in
  let scores = Rca_stats.Pca.transform p data in
  check_int "rows" 20 (Rca_stats.Matrix.rows scores);
  check_int "cols" 3 (Rca_stats.Matrix.cols scores)

let ect_variable_scores_rank_shifted () =
  let rng = Rca_rng.Splitmix.create 8 in
  let names = [| "a"; "b"; "c" |] in
  let ens = Rca_stats.Matrix.init ~rows:30 ~cols:3 (fun _ _ -> Rca_rng.Prng.gaussian rng) in
  let t = Rca_ect.Ect.fit ~var_names:names ens in
  let row = [| 0.0; 25.0; 0.0 |] in
  (match Rca_ect.Ect.variable_scores t row with
  | (top, score) :: _ ->
      Alcotest.(check string) "b most anomalous" "b" top;
      check_bool "large z" true (score > 5.0)
  | [] -> Alcotest.fail "empty scores")

let logistic_proba_bounds () =
  let rng = Rca_rng.Splitmix.create 6 in
  let x = Rca_stats.Matrix.init ~rows:40 ~cols:3 (fun _ _ -> Rca_rng.Prng.gaussian rng) in
  let y = Array.init 40 (fun i -> if i < 20 then 0.0 else 1.0) in
  let m = Rca_stats.Logistic.fit ~lambda:0.1 x y in
  Array.iter
    (fun row ->
      let p = Rca_stats.Logistic.predict_proba m row in
      check_bool "in [0,1]" true (p >= 0.0 && p <= 1.0))
    x

(* --- sampling stream semantics -------------------------------------------------------- *)

let sampling_stream_catches_overwritten_difference () =
  (* a node whose final value is identical in both runs but whose earlier
     sample differs must still be flagged (FLiT-style semantics) *)
  let config = Rca_synth.Config.tiny in
  let fixture =
    Rca_experiments.Fixture.make
      ~inject:
        (Rca_synth.Model.inject ~file:"microp_aero.F90"
           ~from_:"0.20_r8 * sqrt(tke(i, k))" ~to_:"2.00_r8 * sqrt(tke(i, k))")
      config
  in
  let wsub =
    List.filter
      (fun id -> (MG.node fixture.Rca_experiments.Fixture.mg id).MG.module_ = "microp_aero")
      (MG.nodes_with_canonical fixture.Rca_experiments.Fixture.mg "wsub")
  in
  let cmp =
    Rca_experiments.Sampling.compare_runs ~fixture ~opts:(fun o -> o) wsub
  in
  check_bool "wsub stream differs" true
    (List.for_all (fun c -> c.Rca_experiments.Sampling.differs) cmp)

let sampling_control_vs_control_quiet () =
  (* no injection, identical configuration: nothing should differ *)
  let config = Rca_synth.Config.tiny in
  let fixture = Rca_experiments.Fixture.make config in
  let mg = fixture.Rca_experiments.Fixture.mg in
  let watched =
    List.concat_map (fun c -> MG.nodes_with_canonical mg c) [ "tlat"; "cld"; "flwds"; "u" ]
  in
  let cmp = Rca_experiments.Sampling.compare_runs ~fixture ~opts:(fun o -> o) watched in
  check_bool "nothing differs" true
    (List.for_all (fun c -> not c.Rca_experiments.Sampling.differs) cmp)

(* --- adverse API usage ------------------------------------------------------------ *)

let slice_unknown_output_is_empty () =
  let mg = MG.build (parse "module m\nreal(r8) :: x\ncontains\nsubroutine s()\nx = 1.0\nend subroutine\nend module m") in
  let s = Rca_core.Slice.of_outputs mg [ "no_such_output" ] in
  check_int "empty slice" 0 (Rca_core.Slice.size s)

let refine_on_empty_initial () =
  let mg = MG.build (parse "module m\nreal(r8) :: x\ncontains\nsubroutine s()\nx = 1.0\nend subroutine\nend module m") in
  let r = Rca_core.Refine.refine mg ~initial:[] ~detect:Rca_core.Detector.never in
  check_bool "converged empty" true (r.Rca_core.Refine.outcome = Rca_core.Refine.Converged);
  check_int "no nodes" 0 (List.length r.Rca_core.Refine.final_nodes)

let pipeline_empty_outputs () =
  let mg = MG.build (parse "module m\nreal(r8) :: x\ncontains\nsubroutine s()\nx = 1.0\nend subroutine\nend module m") in
  let t = Rca_core.Pipeline.run mg ~outputs:[] ~detect:Rca_core.Detector.never in
  check_int "no candidates" 0 (List.length (Rca_core.Pipeline.candidates mg t))

let machine_reports_unknown_module () =
  let m = Machine.create (parse "module m\nend module m") in
  (match Machine.get_module_var m ~module_:"nope" ~name:"x" with
  | exception Machine.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected error");
  match Machine.invoke m ~module_:"m" ~sub:"nope" ~args:[] with
  | exception Machine.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected error"

let prng_choose_empty_rejected () =
  let g = Rca_rng.Splitmix.create 1 in
  Alcotest.check_raises "empty" (Invalid_argument "Prng.choose: empty list") (fun () ->
      ignore (Rca_rng.Prng.choose g ([] : int list)))

let topological_empty_graph () =
  let g = G.Digraph.create () in
  Alcotest.(check (option (list int))) "empty order" (Some []) (G.Traverse.topological_order g)

(* --- properties ------------------------------------------------------------------------ *)

let graph_gen =
  QCheck2.Gen.(
    let* n = int_range 4 30 in
    let* m = int_range n (3 * n) in
    let* seed = int_range 0 1_000_000 in
    return (G.Gen.gnm ~seed ~n ~m))

let prop_refine_final_subset_of_initial =
  QCheck2.Test.make ~name:"refinement never invents nodes" ~count:30
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let src =
        Printf.sprintf
          "module m\nreal(r8) :: v0, v1, v2, v3, v4, v5\ncontains\nsubroutine s()\nv1 = v0 * 2.0\nv2 = v1 + v0\nv3 = v%d + v1\nv4 = v3 * v2\nv5 = v4 + v%d\nend subroutine\nend module m"
          (seed mod 3) (seed mod 4)
      in
      let mg = MG.build (parse src) in
      let initial = List.init (MG.n_nodes mg) (fun i -> i) in
      let detect = if seed mod 2 = 0 then Rca_core.Detector.never else fun s -> s in
      let r =
        Rca_core.Refine.refine mg ~initial ~detect ~stop_size:1 ~max_iterations:4
      in
      List.for_all (fun v -> List.mem v initial) r.Rca_core.Refine.final_nodes)

let prop_betweenness_nonnegative =
  QCheck2.Test.make ~name:"betweenness nonnegative" ~count:60 graph_gen (fun g ->
      Array.for_all (fun x -> x >= 0.0) (G.Betweenness.node_betweenness g))

let prop_gn_partition_covers =
  QCheck2.Test.make ~name:"G-N partition covers all nodes" ~count:20 graph_gen (fun g ->
      let step = G.Community.girvan_newman_step ~max_removals:20 g in
      let p = step.G.Community.partition in
      List.sort compare (List.concat p.G.Community.communities) = G.Digraph.nodes g)

let prop_slice_contains_targets =
  QCheck2.Test.make ~name:"slice always contains its targets" ~count:40
    QCheck2.Gen.(int_range 0 1_000)
    (fun seed ->
      let src =
        Printf.sprintf
          "module m\nreal(r8) :: a, b, c, target_%d\ncontains\nsubroutine s()\nb = a\nc = b\ntarget_%d = c\nend subroutine\nend module m"
          seed seed
      in
      let mg = MG.build (parse src) in
      let name = Printf.sprintf "target_%d" seed in
      let s = Rca_core.Slice.of_internals mg [ name ] in
      List.for_all (fun t -> Rca_core.Slice.contains s t) s.Rca_core.Slice.targets
      && Rca_core.Slice.size s = 4)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_refine_final_subset_of_initial;
      prop_betweenness_nonnegative;
      prop_gn_partition_covers;
      prop_slice_contains_targets;
    ]

let () =
  Alcotest.run "more"
    [
      ( "parser",
        [
          Alcotest.test_case "double precision" `Quick double_precision_decl;
          Alcotest.test_case "dimension attr" `Quick dimension_attribute_skipped;
          Alcotest.test_case "multi entities" `Quick multiple_entities_with_init;
          Alcotest.test_case "elseif" `Quick elseif_single_token;
          Alcotest.test_case "endif/enddo" `Quick endif_enddo_single_tokens;
          Alcotest.test_case "pow neg exponent" `Quick pow_with_negative_exponent;
          Alcotest.test_case "explicit interface" `Quick interface_with_explicit_body_skipped;
          Alcotest.test_case "print" `Quick print_statement_parses;
          Alcotest.test_case "select case" `Quick select_case_parses_and_prints;
          Alcotest.test_case "count stmts" `Quick count_stmts_recurses;
        ] );
      ( "interp",
        [
          Alcotest.test_case "select executes" `Quick select_case_executes;
          Alcotest.test_case "select metagraph" `Quick select_case_in_metagraph;
          Alcotest.test_case "merge/sign/mod" `Quick merge_and_sign;
          Alcotest.test_case "nint/floor/int" `Quick nint_floor_int;
          Alcotest.test_case "string compare" `Quick string_comparison_in_if;
          Alcotest.test_case "print log" `Quick print_goes_to_log;
          Alcotest.test_case "array copy" `Quick whole_array_copy;
          Alcotest.test_case "nested functions" `Quick nested_function_calls_execute;
          Alcotest.test_case "formal binding hook" `Quick formal_binding_fires_assign_hook;
          Alcotest.test_case "arity check" `Quick invoke_arity_checked;
        ] );
      ( "graph",
        [
          Alcotest.test_case "katz directions" `Quick katz_directions_differ;
          Alcotest.test_case "label prop deterministic" `Quick label_propagation_deterministic;
          Alcotest.test_case "dag multi target" `Quick shortest_path_dag_multi_target;
          Alcotest.test_case "gn budget" `Quick girvan_newman_max_removals_budget;
        ] );
      ( "stats",
        [
          Alcotest.test_case "quantile bad q" `Quick quantile_rejects_bad_q;
          Alcotest.test_case "pca shape" `Quick pca_transform_shape;
          Alcotest.test_case "variable scores" `Quick ect_variable_scores_rank_shifted;
          Alcotest.test_case "proba bounds" `Quick logistic_proba_bounds;
        ] );
      ( "louvain",
        [
          Alcotest.test_case "splits clusters" `Quick louvain_splits_two_clusters;
          Alcotest.test_case "beats trivial modularity" `Quick louvain_modularity_beats_trivial;
          Alcotest.test_case "deterministic" `Quick louvain_deterministic;
          Alcotest.test_case "refine partitioners" `Quick refine_with_alternative_partitioners;
        ] );
      ( "adverse",
        [
          Alcotest.test_case "unknown output" `Quick slice_unknown_output_is_empty;
          Alcotest.test_case "empty initial" `Quick refine_on_empty_initial;
          Alcotest.test_case "empty outputs" `Quick pipeline_empty_outputs;
          Alcotest.test_case "unknown module/sub" `Quick machine_reports_unknown_module;
          Alcotest.test_case "choose empty" `Quick prng_choose_empty_rejected;
          Alcotest.test_case "topo empty" `Quick topological_empty_graph;
        ] );
      ( "sampling",
        [
          Alcotest.test_case "stream catches overwrite" `Slow sampling_stream_catches_overwritten_difference;
          Alcotest.test_case "control quiet" `Slow sampling_control_vs_control_quiet;
        ] );
      ("properties", qcheck_cases);
    ]
