(* Tests for the rca_rng library: stream determinism, reference values,
   distributional sanity and the sampling helpers. *)

open Rca_rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- MT19937 reference values -------------------------------------------- *)

(* First outputs of MT19937 seeded with 5489 (the reference default seed),
   from the Matsumoto–Nishimura reference implementation. *)
let mt_reference () =
  let mt = Mersenne.create 5489 in
  let expected = [ 3499211612; 581869302; 3890346734; 3586334585; 545404204 ] in
  List.iteri
    (fun i e -> check_int (Printf.sprintf "mt19937 draw %d" i) e (Prng.next_u32 mt))
    expected

let mt_seed_1 () =
  (* Seeded with 1, also from the reference implementation. *)
  let mt = Mersenne.create 1 in
  let expected = [ 1791095845; 4282876139; 3093770124; 4005303368; 491263 ] in
  List.iteri
    (fun i e -> check_int (Printf.sprintf "mt19937(1) draw %d" i) e (Prng.next_u32 mt))
    expected

(* --- generic stream properties ------------------------------------------- *)

let generators = [ ("splitmix", Splitmix.create); ("kiss", Kiss.create); ("mt", Mersenne.create) ]

let determinism () =
  List.iter
    (fun (name, mk) ->
      let a = mk 42 and b = mk 42 in
      for i = 0 to 999 do
        check_int
          (Printf.sprintf "%s deterministic draw %d" name i)
          (Prng.next_u32 a) (Prng.next_u32 b)
      done)
    generators

let reseed_restarts_stream () =
  List.iter
    (fun (name, mk) ->
      let g = mk 7 in
      let first = List.init 20 (fun _ -> Prng.next_u32 g) in
      Prng.reseed g 7;
      let again = List.init 20 (fun _ -> Prng.next_u32 g) in
      check_bool (name ^ " reseed replays") true (first = again))
    generators

let distinct_seeds_distinct_streams () =
  List.iter
    (fun (name, mk) ->
      let a = mk 1 and b = mk 2 in
      let xs = List.init 50 (fun _ -> Prng.next_u32 a) in
      let ys = List.init 50 (fun _ -> Prng.next_u32 b) in
      check_bool (name ^ " seeds differ") true (xs <> ys))
    generators

let kiss_vs_mt_streams_differ () =
  let k = Kiss.create 42 and m = Mersenne.create 42 in
  let xs = List.init 50 (fun _ -> Prng.next_u32 k) in
  let ys = List.init 50 (fun _ -> Prng.next_u32 m) in
  check_bool "kiss <> mt" true (xs <> ys)

let range_u32 () =
  List.iter
    (fun (name, mk) ->
      let g = mk 99 in
      for _ = 1 to 10_000 do
        let x = Prng.next_u32 g in
        if x < 0 || x > 0xFFFFFFFF then
          Alcotest.failf "%s produced out-of-range u32 %d" name x
      done)
    generators

(* --- derived distributions ----------------------------------------------- *)

let float01_in_range () =
  List.iter
    (fun (name, mk) ->
      let g = mk 3 in
      for _ = 1 to 10_000 do
        let x = Prng.float01 g in
        if x < 0.0 || x >= 1.0 then Alcotest.failf "%s float01 out of range %f" name x
      done)
    generators

let float01_mean () =
  let g = Splitmix.create 11 in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Prng.float01 g
  done;
  let mean = !sum /. float_of_int n in
  check_bool "uniform mean near 0.5" true (abs_float (mean -. 0.5) < 0.01)

let gaussian_moments () =
  let g = Mersenne.create 2024 in
  let n = 50_000 in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  for _ = 1 to n do
    let x = Prng.gaussian g in
    sum := !sum +. x;
    sumsq := !sumsq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  check_bool "gaussian mean ~0" true (abs_float mean < 0.03);
  check_bool "gaussian var ~1" true (abs_float (var -. 1.0) < 0.05)

let int_bounds () =
  let g = Kiss.create 5 in
  for bound = 1 to 40 do
    for _ = 1 to 500 do
      let x = Prng.int g bound in
      if x < 0 || x >= bound then Alcotest.failf "int %d out of bound %d" x bound
    done
  done

let int_rejects_bad_bound () =
  let g = Splitmix.create 1 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int g 0))

let int_covers_all_values () =
  let g = Mersenne.create 8 in
  let seen = Array.make 10 false in
  for _ = 1 to 5_000 do
    seen.(Prng.int g 10) <- true
  done;
  Array.iteri (fun i b -> check_bool (Printf.sprintf "value %d seen" i) true b) seen

(* --- helpers -------------------------------------------------------------- *)

let shuffle_is_permutation () =
  let g = Splitmix.create 17 in
  let arr = Array.init 100 (fun i -> i) in
  Prng.shuffle g arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 100 (fun i -> i)) sorted

let sample_distinct () =
  let g = Kiss.create 23 in
  for _ = 1 to 50 do
    let s = Prng.sample g ~n:30 ~k:10 in
    check_int "sample size" 10 (Array.length s);
    let tbl = Hashtbl.create 16 in
    Array.iter
      (fun x ->
        if x < 0 || x >= 30 then Alcotest.failf "sample value %d out of range" x;
        if Hashtbl.mem tbl x then Alcotest.fail "duplicate in sample";
        Hashtbl.replace tbl x ())
      s
  done

let sample_k_gt_n () =
  let g = Splitmix.create 1 in
  Alcotest.check_raises "k > n" (Invalid_argument "Prng.sample: k > n") (fun () ->
      ignore (Prng.sample g ~n:3 ~k:4))

let choose_from_list () =
  let g = Splitmix.create 31 in
  for _ = 1 to 200 do
    let x = Prng.choose g [ 1; 2; 3 ] in
    check_bool "member" true (List.mem x [ 1; 2; 3 ])
  done

let float_range_bounds () =
  let g = Mersenne.create 77 in
  for _ = 1 to 2_000 do
    let x = Prng.float_range g (-3.0) 5.5 in
    check_bool "in range" true (x >= -3.0 && x < 5.5)
  done

(* --- qcheck properties ---------------------------------------------------- *)

let prop_int_in_bound =
  QCheck2.Test.make ~name:"Prng.int always within bound" ~count:500
    QCheck2.Gen.(pair (int_range 1 10_000) (int_range 0 1_000_000))
    (fun (bound, seed) ->
      let g = Splitmix.create seed in
      let x = Prng.int g bound in
      x >= 0 && x < bound)

let prop_shuffle_preserves_multiset =
  QCheck2.Test.make ~name:"shuffle preserves multiset" ~count:200
    QCheck2.Gen.(pair (list small_int) (int_range 0 1_000_000))
    (fun (xs, seed) ->
      let g = Kiss.create seed in
      let arr = Array.of_list xs in
      Prng.shuffle g arr;
      List.sort compare (Array.to_list arr) = List.sort compare xs)

let prop_mix64_bijective_sample =
  QCheck2.Test.make ~name:"splitmix mix64 injective on sample" ~count:300
    QCheck2.Gen.(pair int int)
    (fun (a, b) ->
      a = b
      || Splitmix.mix64 (Int64.of_int a) <> Splitmix.mix64 (Int64.of_int b))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_int_in_bound; prop_shuffle_preserves_multiset; prop_mix64_bijective_sample ]

let () =
  Alcotest.run "rca_rng"
    [
      ( "mt19937",
        [
          Alcotest.test_case "reference seed 5489" `Quick mt_reference;
          Alcotest.test_case "reference seed 1" `Quick mt_seed_1;
        ] );
      ( "streams",
        [
          Alcotest.test_case "determinism" `Quick determinism;
          Alcotest.test_case "reseed replays" `Quick reseed_restarts_stream;
          Alcotest.test_case "distinct seeds" `Quick distinct_seeds_distinct_streams;
          Alcotest.test_case "kiss vs mt differ" `Quick kiss_vs_mt_streams_differ;
          Alcotest.test_case "u32 range" `Quick range_u32;
        ] );
      ( "distributions",
        [
          Alcotest.test_case "float01 range" `Quick float01_in_range;
          Alcotest.test_case "float01 mean" `Quick float01_mean;
          Alcotest.test_case "gaussian moments" `Quick gaussian_moments;
          Alcotest.test_case "int bounds" `Quick int_bounds;
          Alcotest.test_case "int bad bound" `Quick int_rejects_bad_bound;
          Alcotest.test_case "int covers values" `Quick int_covers_all_values;
        ] );
      ( "helpers",
        [
          Alcotest.test_case "shuffle permutation" `Quick shuffle_is_permutation;
          Alcotest.test_case "sample distinct" `Quick sample_distinct;
          Alcotest.test_case "sample k>n" `Quick sample_k_gt_n;
          Alcotest.test_case "choose member" `Quick choose_from_list;
          Alcotest.test_case "float_range bounds" `Quick float_range_bounds;
        ] );
      ("properties", qcheck_cases);
    ]
