(* Tests for the rca_interp machine: evaluation semantics, call-by-
   reference, module elaboration, FMA contraction, hooks, history and
   kernel capture/replay. *)

open Rca_fortran
open Rca_interp

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-12))

let contains_sub ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let parse src = Parser.parse_file ~strict:true ~file:"test.F90" src

let machine_of src = Machine.create (parse src)

let getf m ~module_ ~name =
  match Machine.get_module_var m ~module_ ~name with
  | Machine.Vreal f -> f
  | Machine.Vint i -> float_of_int i
  | _ -> Alcotest.fail "expected scalar"

(* --- basic execution --------------------------------------------------------- *)

let arith_src =
  {|
module arith
  real(r8) :: out1, out2, out3, out4
  integer :: iout
contains
  subroutine go()
    out1 = 1.5_r8 + 2.0_r8 * 3.0_r8
    out2 = 2.0_r8 ** 3 ** 2
    out3 = -2.0_r8 ** 2
    out4 = 7.0_r8 / 2.0_r8
    iout = 7 / 2
  end subroutine go
end module arith
|}

let basic_arithmetic () =
  let m = machine_of arith_src in
  ignore (Machine.invoke m ~module_:"arith" ~sub:"go" ~args:[]);
  check_float "precedence" 7.5 (getf m ~module_:"arith" ~name:"out1");
  check_float "pow right assoc" 512.0 (getf m ~module_:"arith" ~name:"out2");
  check_float "unary minus vs pow" (-4.0) (getf m ~module_:"arith" ~name:"out3");
  check_float "real division" 3.5 (getf m ~module_:"arith" ~name:"out4");
  check_float "integer division truncates" 3.0 (getf m ~module_:"arith" ~name:"iout")

let control_flow_src =
  {|
module flow
  real(r8) :: acc
  integer :: nloops
contains
  subroutine go(n)
    integer, intent(in) :: n
    integer :: i, j
    acc = 0.0_r8
    nloops = 0
    do i = 1, n
      if (mod(i, 2) == 0) then
        acc = acc + 2.0_r8
      else if (i == 3) then
        cycle
      else
        acc = acc + 1.0_r8
      end if
      nloops = nloops + 1
    end do
    do j = 10, 1, -3
      acc = acc + 0.25_r8
    end do
    do while (acc < 100.0_r8)
      acc = acc + 50.0_r8
      if (acc > 120.0_r8) exit
    end do
  end subroutine go
end module flow
|}

let control_flow () =
  let m = machine_of control_flow_src in
  ignore (Machine.invoke m ~module_:"flow" ~sub:"go" ~args:[ Machine.Vint 5 ]);
  (* i=1 odd +1; i=2 +2; i=3 cycle; i=4 +2; i=5 +1 => 6; 4 downward loops +1;
     then while: 7 -> 57 -> 107 (no exit since 107 <= 120 -> loop cond fails) *)
  check_float "acc" 107.0 (getf m ~module_:"flow" ~name:"acc");
  check_int "nloops skips cycle" 4
    (match Machine.get_module_var m ~module_:"flow" ~name:"nloops" with
    | Machine.Vint i -> i
    | _ -> -1)

let array_src =
  {|
module arrays
  integer, parameter :: n = 4
  real(r8) :: a(n), b(n, 2)
  real(r8) :: total, picked
contains
  subroutine go()
    integer :: i
    a = 1.0_r8
    a(2) = 5.0_r8
    do i = 1, n
      b(i, 1) = a(i) * 2.0_r8
      b(i, 2) = a(i) + 10.0_r8
    end do
    total = sum(a) + maxval(a) + minval(a) + size(a)
    picked = b(2, 1) + b(3, 2)
    a(:) = 0.5_r8
  end subroutine go
end module arrays
|}

let arrays () =
  let m = machine_of array_src in
  ignore (Machine.invoke m ~module_:"arrays" ~sub:"go" ~args:[]);
  (* sum = 1+5+1+1 = 8, maxval 5, minval 1, size 4 -> 18 *)
  check_float "reductions" 18.0 (getf m ~module_:"arrays" ~name:"total");
  check_float "2d elements" 21.0 (getf m ~module_:"arrays" ~name:"picked");
  (match Machine.get_module_var m ~module_:"arrays" ~name:"a" with
  | Machine.Varr arr -> Array.iter (fun x -> check_float "broadcast" 0.5 x) arr.Machine.data
  | _ -> Alcotest.fail "a should be an array")

let derived_src =
  {|
module phys_types
  integer, parameter :: pcols = 3
  type physics_state
    real(r8) :: t(pcols)
    real(r8) :: ps
  end type physics_state
end module phys_types

module driver
  use phys_types
  type(physics_state) :: state
  real(r8) :: got
contains
  subroutine go()
    integer :: i
    do i = 1, pcols
      state%t(i) = 270.0_r8 + i
    end do
    state%ps = 1000.0_r8
    got = state%t(2) + state%ps
  end subroutine go
end module driver
|}

let derived_types () =
  let m = machine_of derived_src in
  ignore (Machine.invoke m ~module_:"driver" ~sub:"go" ~args:[]);
  check_float "derived access" 1272.0 (getf m ~module_:"driver" ~name:"got")

let call_src =
  {|
module callee_mod
  real(r8) :: module_state
contains
  subroutine double_it(x)
    real(r8), intent(inout) :: x
    x = x * 2.0_r8
  end subroutine double_it

  function plus(a, b) result(c)
    real(r8), intent(in) :: a, b
    real(r8) :: c
    c = a + b
  end function plus

  elemental function square(x) result(y)
    real(r8), intent(in) :: x
    real(r8) :: y
    y = x * x
  end function square
end module callee_mod

module caller_mod
  use callee_mod
  real(r8) :: s, arr(3), elem_result
contains
  subroutine go()
    s = 10.0_r8
    call double_it(s)
    arr(1) = 3.0_r8
    call double_it(arr(1))
    s = s + plus(1.0_r8, 2.0_r8)
    elem_result = square(plus(s, arr(1)))
  end subroutine go
end module caller_mod
|}

let calls_by_reference () =
  let m = machine_of call_src in
  ignore (Machine.invoke m ~module_:"caller_mod" ~sub:"go" ~args:[]);
  (* s: 10 -> 20 -> 23; arr(1): 3 -> 6 (copy-back); square(23+6) = 841 *)
  check_float "scalar byref + function" 23.0 (getf m ~module_:"caller_mod" ~name:"s");
  check_float "array element copy-back" 841.0
    (getf m ~module_:"caller_mod" ~name:"elem_result")

let use_rename_src =
  {|
module shr_kind_mod
  integer, parameter :: shr_kind_r8 = 8
  real(r8), parameter :: pi_full = 3.14159_r8
end module shr_kind_mod

module consumer
  use shr_kind_mod, only: pi => pi_full
  real(r8) :: out
contains
  subroutine go()
    out = pi * 2.0_r8
  end subroutine go
end module consumer
|}

let use_renames () =
  let m = machine_of use_rename_src in
  ignore (Machine.invoke m ~module_:"consumer" ~sub:"go" ~args:[]);
  check_float "renamed import" 6.28318 (getf m ~module_:"consumer" ~name:"out")

let interface_src =
  {|
module generic_mod
  real(r8) :: out1, out2
  interface svp
    module procedure svp_one, svp_two
  end interface
contains
  function svp_one(t) result(e)
    real(r8), intent(in) :: t
    real(r8) :: e
    e = t * 2.0_r8
  end function svp_one

  function svp_two(t, p) result(e)
    real(r8), intent(in) :: t, p
    real(r8) :: e
    e = t + p
  end function svp_two

  subroutine go()
    out1 = svp(3.0_r8)
    out2 = svp(3.0_r8, 4.0_r8)
  end subroutine go
end module generic_mod
|}

let interface_dispatch () =
  let m = machine_of interface_src in
  ignore (Machine.invoke m ~module_:"generic_mod" ~sub:"go" ~args:[]);
  check_float "1-arg candidate" 6.0 (getf m ~module_:"generic_mod" ~name:"out1");
  check_float "2-arg candidate" 7.0 (getf m ~module_:"generic_mod" ~name:"out2")

(* --- FMA semantics ------------------------------------------------------------- *)

let fma_src =
  {|
module mg
  real(r8) :: r1, r2
contains
  subroutine go(a, b, c)
    real(r8), intent(in) :: a, b, c
    r1 = a * b + c
    r2 = a * b - c
  end subroutine go
end module mg
|}

let fma_changes_rounding () =
  let prog = parse fma_src in
  (* a*b = 1 - eps^2: the unfused product rounds to exactly 1, the fused
     path keeps the -eps^2 term through the cancellation with c = -1 *)
  let a = 1.0 +. epsilon_float and b = 1.0 -. epsilon_float in
  let c = -1.0 in
  let run fma =
    let m = Machine.create prog in
    Machine.set_fma m ~enabled:fma ~disabled:[];
    ignore
      (Machine.invoke m ~module_:"mg" ~sub:"go"
         ~args:[ Machine.Vreal a; Machine.Vreal b; Machine.Vreal c ]);
    getf m ~module_:"mg" ~name:"r1"
  in
  let off = run false and on = run true in
  (* catastrophic cancellation: a*b rounds to 1 + 2eps, so off = 2eps while
     the fused result keeps the eps^2 term *)
  check_bool "fma on/off differ" true (off <> on);
  check_float "fused exact" (Float.fma a b c) on;
  check_float "unfused" ((a *. b) +. c) off

let fma_respects_module_disable () =
  let prog = parse fma_src in
  let m = Machine.create prog in
  Machine.set_fma m ~enabled:true ~disabled:[ "mg" ];
  let a = 1.0 +. epsilon_float in
  ignore
    (Machine.invoke m ~module_:"mg" ~sub:"go"
       ~args:[ Machine.Vreal a; Machine.Vreal a; Machine.Vreal (-1.0) ]);
  check_float "disabled module stays unfused" ((a *. a) -. 1.0)
    (getf m ~module_:"mg" ~name:"r1")

let fma_int_pure_unaffected () =
  let src =
    "module im\n integer :: r\ncontains\n subroutine go()\n r = 3 * 4 + 5\n end subroutine\nend module im"
  in
  let m = Machine.create (parse src) in
  Machine.set_fma m ~enabled:true ~disabled:[];
  ignore (Machine.invoke m ~module_:"im" ~sub:"go" ~args:[]);
  check_float "integer arithmetic exact" 17.0 (getf m ~module_:"im" ~name:"r")

(* --- PRNG hook ------------------------------------------------------------------- *)

let rng_src =
  {|
module cloud
  real(r8) :: draws(5), total
contains
  subroutine go()
    call random_number(draws)
    total = sum(draws)
  end subroutine go
end module cloud
|}

let random_number_uses_machine_prng () =
  let prog = parse rng_src in
  let run prng =
    let m = Machine.create ~prng prog in
    ignore (Machine.invoke m ~module_:"cloud" ~sub:"go" ~args:[]);
    getf m ~module_:"cloud" ~name:"total"
  in
  let kiss1 = run (Rca_rng.Kiss.create 7) in
  let kiss2 = run (Rca_rng.Kiss.create 7) in
  let mt = run (Rca_rng.Mersenne.create 7) in
  check_float "same prng reproduces" kiss1 kiss2;
  check_bool "kiss vs mt differ" true (kiss1 <> mt);
  check_bool "draws in range" true (kiss1 > 0.0 && kiss1 < 5.0)

(* --- outfld history ----------------------------------------------------------------- *)

let outfld_src =
  {|
module hist
  real(r8) :: flwds
contains
  subroutine go()
    flwds = 350.5_r8
    call outfld('flds', flwds)
    call outfld('flds', flwds + 1.0_r8)
  end subroutine go
end module hist
|}

let outfld_records_history () =
  let m = machine_of outfld_src in
  ignore (Machine.invoke m ~module_:"hist" ~sub:"go" ~args:[]);
  match Machine.history_value m "flds" with
  | Some v -> check_float "last write wins" 351.5 v
  | None -> Alcotest.fail "history missing"

(* --- hooks ---------------------------------------------------------------------------- *)

let hooks_fire () =
  let m = machine_of arith_src in
  let stmts = ref 0 and assigns = ref [] in
  m.Machine.hooks.Machine.on_stmt <- Some (fun _ _ _ -> incr stmts);
  m.Machine.hooks.Machine.on_assign <-
    Some (fun ~module_:_ ~sub:_ ~line:_ ~var ~canonical:_ v -> assigns := (var, v) :: !assigns);
  ignore (Machine.invoke m ~module_:"arith" ~sub:"go" ~args:[]);
  check_int "five statements" 5 !stmts;
  check_int "five assignments" 5 (List.length !assigns);
  check_bool "out1 seen" true (List.mem_assoc "out1" !assigns)

let coverage_hook_sees_lines () =
  let m = machine_of control_flow_src in
  let lines = Hashtbl.create 16 in
  m.Machine.hooks.Machine.on_stmt <-
    Some (fun md sb line -> Hashtbl.replace lines (md, sb, line) ());
  ignore (Machine.invoke m ~module_:"flow" ~sub:"go" ~args:[ Machine.Vint 5 ]);
  check_bool "several distinct lines" true (Hashtbl.length lines > 5)

(* --- errors ----------------------------------------------------------------------------- *)

let unknown_variable_error () =
  let src = "module bad\ncontains\nsubroutine go()\nx = y + 1\nend subroutine\nend module bad" in
  let m = machine_of src in
  match Machine.invoke m ~module_:"bad" ~sub:"go" ~args:[] with
  | exception Machine.Runtime_error msg ->
      check_bool "mentions y" true (contains_sub ~sub:"y" msg)
  | _ -> Alcotest.fail "expected runtime error"

let out_of_bounds_error () =
  let src =
    "module bad\nreal(r8) :: a(3)\ncontains\nsubroutine go()\na(4) = 1.0\nend subroutine\nend module bad"
  in
  let m = machine_of src in
  (match Machine.invoke m ~module_:"bad" ~sub:"go" ~args:[] with
  | exception Machine.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected bounds error")

let runaway_loop_guard () =
  let src =
    "module bad\nreal(r8) :: x\ncontains\nsubroutine go()\ndo while (x < 1.0)\nx = 0.0\nend do\nend subroutine\nend module bad"
  in
  let m = Machine.create ~max_steps:10_000 (parse src) in
  match Machine.invoke m ~module_:"bad" ~sub:"go" ~args:[] with
  | exception Machine.Runtime_error msg ->
      check_bool "budget message" true (contains_sub ~sub:"budget" msg)
  | _ -> Alcotest.fail "expected budget error"

let stop_is_error () =
  let src = "module s\ncontains\nsubroutine go()\nstop\nend subroutine\nend module s" in
  let m = machine_of src in
  match Machine.invoke m ~module_:"s" ~sub:"go" ~args:[] with
  | exception Machine.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected stop error"

(* --- kernel capture / replay -------------------------------------------------------------- *)

let kernel_src =
  {|
module state_mod
  real(r8) :: base
end module state_mod

module mg_kernel
  use state_mod
  real(r8) :: out_total
contains
  subroutine micro_tend(q, n)
    integer, intent(in) :: n
    real(r8), intent(inout) :: q(n)
    real(r8) :: dum, ratio, t1, resid
    integer :: i
    ratio = 0.0_r8
    do i = 1, n
      dum = q(i) * base + 1.0e-16_r8
      t1 = q(i) * base
      resid = q(i) * base - t1
      ratio = ratio + dum * dum + resid
      q(i) = q(i) + dum
    end do
    out_total = ratio
  end subroutine micro_tend
end module mg_kernel

module kdriver
  use mg_kernel
  use state_mod
  real(r8) :: q(8)
contains
  subroutine run_model()
    integer :: t, i
    base = 1.0_r8 + 1.0e-14_r8
    do i = 1, 8
      q(i) = 0.1_r8 * i
    end do
    do t = 1, 3
      call micro_tend(q, 8)
    end do
  end subroutine run_model
end module kdriver
|}

let kernel_capture_and_replay () =
  let prog = parse kernel_src in
  let drive m = ignore (Machine.invoke m ~module_:"kdriver" ~sub:"run_model" ~args:[]) in
  let cap =
    Kernel.capture ~nth:2 ~program:prog
      ~configure:(fun _ -> ())
      ~drive ~module_:"mg_kernel" ~sub:"micro_tend" ()
  in
  check_bool "captured formals" true (List.mem_assoc "q" cap.Kernel.formals);
  check_bool "captured globals include base" true
    (List.exists
       (fun (m, vars) -> m = "state_mod" && List.mem_assoc "base" vars)
       cap.Kernel.globals);
  (* replay twice with identical config: bitwise identical locals *)
  let l1 = Kernel.replay ~program:prog ~configure:(fun _ -> ()) cap in
  let l2 = Kernel.replay ~program:prog ~configure:(fun _ -> ()) cap in
  check_bool "deterministic replay" true (Kernel.divergent ~threshold:0.0 l1 l2 = []);
  check_bool "locals include dum" true (List.mem_assoc "dum" l1)

let kernel_flags_fma_divergence () =
  let prog = parse kernel_src in
  let drive m = ignore (Machine.invoke m ~module_:"kdriver" ~sub:"run_model" ~args:[]) in
  let cap =
    Kernel.capture ~program:prog ~configure:(fun _ -> ()) ~drive ~module_:"mg_kernel"
      ~sub:"micro_tend" ()
  in
  let with_fma flag m = Machine.set_fma m ~enabled:flag ~disabled:[] in
  let l_off = Kernel.replay ~program:prog ~configure:(with_fma false) cap in
  let l_on = Kernel.replay ~program:prog ~configure:(with_fma true) cap in
  let div = Kernel.divergent ~threshold:1e-30 l_off l_on in
  check_bool "fma replay diverges in some variable" true (div <> []);
  (* resid is exactly 0 unfused and the true product residual fused *)
  check_bool "resid or ratio among divergent" true
    (List.exists (fun d -> d.Kernel.var = "resid" || d.Kernel.var = "ratio") div)

let normalized_rms_values () =
  let a = Machine.Varr { Machine.dims = [| 2 |]; data = [| 3.0; 4.0 |] } in
  let b = Machine.Varr { Machine.dims = [| 2 |]; data = [| 3.0; 4.0 |] } in
  (match Kernel.normalized_rms a b with
  | Some r -> check_float "identical arrays" 0.0 r
  | None -> Alcotest.fail "expected rms");
  let c = Machine.Varr { Machine.dims = [| 2 |]; data = [| 3.0; 4.5 |] } in
  match Kernel.normalized_rms a c with
  | Some r -> check_float "relative diff" 0.1 r
  | None -> Alcotest.fail "expected rms"

(* --- qcheck: interpreter vs OCaml reference on random expressions ------------------------- *)

let rec gen_arith depth =
  let open QCheck2.Gen in
  if depth = 0 then
    oneof
      [ map (fun f -> Printf.sprintf "%.6f" (Float.abs f +. 0.1)) (float_bound_inclusive 9.0);
        return "x"; return "y" ]
  else
    let sub = gen_arith (depth - 1) in
    oneof
      [
        map2 (fun a b -> Printf.sprintf "(%s + %s)" a b) sub sub;
        map2 (fun a b -> Printf.sprintf "(%s - %s)" a b) sub sub;
        map2 (fun a b -> Printf.sprintf "(%s * %s)" a b) sub sub;
        map (fun a -> Printf.sprintf "abs(%s)" a) sub;
        map2 (fun a b -> Printf.sprintf "max(%s, %s)" a b) sub sub;
      ]

(* reference evaluator over the parsed AST *)
let rec ref_eval env (e : Ast.expr) : float =
  match e with
  | Ast.Enum f -> f
  | Ast.Eint i -> float_of_int i
  | Ast.Ebin (Ast.Add, a, b) -> ref_eval env a +. ref_eval env b
  | Ast.Ebin (Ast.Sub, a, b) -> ref_eval env a -. ref_eval env b
  | Ast.Ebin (Ast.Mul, a, b) -> ref_eval env a *. ref_eval env b
  | Ast.Edesig (Ast.Dname n) -> List.assoc n env
  | Ast.Edesig (Ast.Dindex (Ast.Dname "abs", [ a ])) -> abs_float (ref_eval env a)
  | Ast.Edesig (Ast.Dindex (Ast.Dname "max", [ a; b ])) ->
      Float.max (ref_eval env a) (ref_eval env b)
  | _ -> Alcotest.fail "unexpected expr shape"

let prop_interp_matches_reference =
  QCheck2.Test.make ~name:"interpreter matches reference evaluator (no FMA)" ~count:150
    (gen_arith 3) (fun text ->
      let src =
        Printf.sprintf
          "module t\nreal(r8) :: out, x, y\ncontains\nsubroutine go()\nx = 1.25\ny = -0.75\nout = %s\nend subroutine\nend module t"
          text
      in
      let m = Machine.create (Parser.parse_file ~strict:true ~file:"t.F90" src) in
      ignore (Machine.invoke m ~module_:"t" ~sub:"go" ~args:[]);
      let got = getf m ~module_:"t" ~name:"out" in
      let want = ref_eval [ ("x", 1.25); ("y", -0.75) ] (Parser.parse_expression text) in
      got = want)

let qcheck_cases = List.map QCheck_alcotest.to_alcotest [ prop_interp_matches_reference ]

let () =
  Alcotest.run "rca_interp"
    [
      ( "execution",
        [
          Alcotest.test_case "arithmetic" `Quick basic_arithmetic;
          Alcotest.test_case "control flow" `Quick control_flow;
          Alcotest.test_case "arrays" `Quick arrays;
          Alcotest.test_case "derived types" `Quick derived_types;
          Alcotest.test_case "calls by reference" `Quick calls_by_reference;
          Alcotest.test_case "use renames" `Quick use_renames;
          Alcotest.test_case "interface dispatch" `Quick interface_dispatch;
        ] );
      ( "fma",
        [
          Alcotest.test_case "rounding differs" `Quick fma_changes_rounding;
          Alcotest.test_case "per-module disable" `Quick fma_respects_module_disable;
          Alcotest.test_case "integers unaffected" `Quick fma_int_pure_unaffected;
        ] );
      ( "prng",
        [ Alcotest.test_case "machine prng drives random_number" `Quick random_number_uses_machine_prng ] );
      ( "history",
        [ Alcotest.test_case "outfld" `Quick outfld_records_history ] );
      ( "hooks",
        [
          Alcotest.test_case "stmt and assign hooks" `Quick hooks_fire;
          Alcotest.test_case "coverage lines" `Quick coverage_hook_sees_lines;
        ] );
      ( "errors",
        [
          Alcotest.test_case "unknown variable" `Quick unknown_variable_error;
          Alcotest.test_case "out of bounds" `Quick out_of_bounds_error;
          Alcotest.test_case "runaway guard" `Quick runaway_loop_guard;
          Alcotest.test_case "stop" `Quick stop_is_error;
        ] );
      ( "kernel",
        [
          Alcotest.test_case "capture and replay" `Quick kernel_capture_and_replay;
          Alcotest.test_case "fma divergence" `Quick kernel_flags_fma_divergence;
          Alcotest.test_case "normalized rms" `Quick normalized_rms_values;
        ] );
      ("properties", qcheck_cases);
    ]
