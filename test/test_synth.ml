(* Tests for rca_synth: generation determinism, parseability, build
   filtering, bug injections, run behaviour and the signal separations the
   experiments rely on (IC spread << bug effects). *)

open Rca_synth

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let tiny = Config.tiny

(* share generated sources across tests *)
let srcs = lazy (Model.generate tiny)
let program = lazy (Model.parse_program ~strict:true (Lazy.force srcs))
let built = lazy (Model.build_filter (Lazy.force program) ~driver:"cam_driver")

let reldiff a b = abs_float (a -. b) /. Float.max (abs_float a) 1e-300

let max_reldiff v1 v2 =
  let m = ref 0.0 in
  Array.iteri (fun i x -> m := Float.max !m (reldiff x v2.(i))) v1;
  !m

(* --- generation ------------------------------------------------------------- *)

let generation_deterministic () =
  let a = Model.generate tiny and b = Model.generate tiny in
  check_bool "same files" true (a.Model.files = b.Model.files)

let generation_scales_with_config () =
  let small = Model.generate Config.small in
  check_bool "more files" true
    (List.length small.Model.files > List.length (Lazy.force srcs).Model.files);
  check_int "module count formula" (Config.total_modules tiny)
    (List.length (Lazy.force srcs).Model.files)

let all_files_parse_strict () =
  let prog = Lazy.force program in
  check_int "every file yields a module" (List.length (Lazy.force srcs).Model.files)
    (List.length prog)

let no_unparsed_statements () =
  (* tolerant parse must agree with strict parse on this source *)
  let prog = Model.parse_program ~strict:false (Lazy.force srcs) in
  let unparsed = ref 0 in
  List.iter
    (fun m ->
      List.iter
        (fun s ->
          Rca_fortran.Ast.iter_stmts
            (fun st ->
              match st.Rca_fortran.Ast.node with
              | Rca_fortran.Ast.Unparsed _ -> incr unparsed
              | _ -> ())
            s.Rca_fortran.Ast.s_body)
        m.Rca_fortran.Ast.m_subprograms)
    prog;
  check_int "no unparsed" 0 !unparsed

let build_filter_drops_unbuilt () =
  let prog = Lazy.force program and b = Lazy.force built in
  check_int "drops exactly the unbuilt modules" (List.length prog - tiny.Config.n_unbuilt)
    (List.length b);
  check_bool "driver kept" true
    (List.exists (fun m -> m.Rca_fortran.Ast.m_name = "cam_driver") b);
  check_bool "unbuilt dropped" true
    (not (List.exists (fun m -> m.Rca_fortran.Ast.m_name = "pop_ocn_000") b))

let catalogue_outputs_written () =
  let m = Model.run_machine (Lazy.force built) (Model.default_opts tiny) in
  List.iter
    (fun name ->
      match Rca_interp.Machine.history_value m name with
      | Some v -> check_bool (name ^ " finite") true (Float.is_finite v)
      | None -> Alcotest.failf "output %s never written" name)
    Outputs.names

(* --- run behaviour ------------------------------------------------------------- *)

let runs_reproducible () =
  let v1 = Model.run (Lazy.force built) (Model.default_opts tiny) in
  let v2 = Model.run (Lazy.force built) (Model.default_opts tiny) in
  check_bool "bitwise identical" true (v1 = v2)

let members_differ_slightly () =
  let v0 = Model.run (Lazy.force built) (Model.default_opts ~member:0 tiny) in
  let v1 = Model.run (Lazy.force built) (Model.default_opts ~member:1 tiny) in
  let d = max_reldiff v0 v1 in
  check_bool "perturbation visible" true (d > 0.0);
  check_bool "perturbation small" true (d < 1e-8)

let fma_effect_exceeds_ensemble_spread () =
  let opts = Model.default_opts tiny in
  let v_off = Model.run (Lazy.force built) opts in
  let v_on = Model.run (Lazy.force built) { opts with Model.fma = `On } in
  let v_mem = Model.run (Lazy.force built) (Model.default_opts ~member:1 tiny) in
  let fma_d = max_reldiff v_off v_on in
  let ens_d = max_reldiff v_off v_mem in
  check_bool "fma effect real" true (fma_d > 0.0);
  check_bool "fma >> ensemble spread" true (fma_d > 100.0 *. ens_d)

let fma_disable_micro_mg_removes_most () =
  let opts = Model.default_opts tiny in
  let v_off = Model.run (Lazy.force built) opts in
  let v_on = Model.run (Lazy.force built) { opts with Model.fma = `On } in
  let v_part =
    Model.run (Lazy.force built)
      { opts with Model.fma = `On_except [ "micro_mg"; "dyn3_mod" ] }
  in
  check_bool "partial disable much closer to off" true
    (max_reldiff v_off v_part < 0.01 *. max_reldiff v_off v_on)

let prng_swap_changes_radiation () =
  let opts = Model.default_opts tiny in
  let v_kiss = Model.run (Lazy.force built) opts in
  let v_mt =
    Model.run (Lazy.force built) { opts with Model.prng = Rca_rng.Mersenne.create 8191 }
  in
  let idx name =
    let rec go i = function
      | [] -> Alcotest.failf "missing %s" name
      | n :: _ when n = name -> i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 Outputs.names
  in
  check_bool "flds changes" true (reldiff v_kiss.(idx "flds") v_mt.(idx "flds") > 1e-10);
  (* the isolated wsub path has no PRNG dependence *)
  check_bool "wsub unchanged" true (v_kiss.(idx "wsub") = v_mt.(idx "wsub"))

let injection_changes_behavior () =
  let bugged =
    Model.inject ~file:"microp_aero.F90" ~from_:"0.20_r8" ~to_:"2.00_r8" (Lazy.force srcs)
  in
  let prog = Model.build_filter (Model.parse_program ~strict:true bugged) ~driver:"cam_driver" in
  let v_ok = Model.run (Lazy.force built) (Model.default_opts tiny) in
  let v_bug = Model.run prog (Model.default_opts tiny) in
  let idx name =
    let rec go i = function
      | [] -> Alcotest.failf "missing %s" name
      | n :: _ when n = name -> i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 Outputs.names
  in
  check_bool "wsub blows up" true (reldiff v_ok.(idx "wsub") v_bug.(idx "wsub")  > 0.5);
  check_bool "taux untouched" true (v_ok.(idx "taux") = v_bug.(idx "taux"))

let injection_missing_pattern_rejected () =
  match Model.inject ~file:"microp_aero.F90" ~from_:"NO_SUCH_TEXT" ~to_:"x" (Lazy.force srcs) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

(* --- ensemble + ECT integration --------------------------------------------------- *)

let ect_of_model_passes_and_fails () =
  let b = Lazy.force built in
  let ens = Model.ensemble ~members:25 b tiny in
  let t = Rca_ect.Ect.fit ~var_names:Model.output_names ens in
  (* consistent experimental runs: fresh members *)
  let consistent =
    Array.init 3 (fun i -> Model.run b (Model.default_opts ~member:(100 + i) tiny))
  in
  Alcotest.(check string) "consistent passes" "Pass"
    (Rca_ect.Ect.verdict_string (Rca_ect.Ect.evaluate t consistent).Rca_ect.Ect.verdict);
  (* FMA-enabled experimental runs *)
  let fma =
    Array.init 3 (fun i ->
        Model.run b { (Model.default_opts ~member:(200 + i) tiny) with Model.fma = `On })
  in
  Alcotest.(check string) "fma fails" "Fail"
    (Rca_ect.Ect.verdict_string (Rca_ect.Ect.evaluate t fma).Rca_ect.Ect.verdict)

(* --- outputs catalogue ------------------------------------------------------------- *)

let catalogue_consistency () =
  check_bool "no duplicate outputs" true
    (List.length Outputs.names = List.length (List.sort_uniq compare Outputs.names));
  Alcotest.(check (option string)) "flds internal" (Some "flwds")
    (Outputs.internal_of_output "flds");
  Alcotest.(check (list string)) "wsx outputs" [ "taux" ] (Outputs.outputs_of_internal "wsx")

let cam_module_classification () =
  check_bool "micro_mg is CAM" true (Outputs.is_cam_module "micro_mg");
  check_bool "land is not CAM" false (Outputs.is_cam_module "lnd_comp_mod");
  check_bool "ocean is not CAM" false (Outputs.is_cam_module "pop_ocn_000")

let () =
  Alcotest.run "rca_synth"
    [
      ( "generation",
        [
          Alcotest.test_case "deterministic" `Quick generation_deterministic;
          Alcotest.test_case "scales" `Quick generation_scales_with_config;
          Alcotest.test_case "parses strict" `Quick all_files_parse_strict;
          Alcotest.test_case "no unparsed" `Quick no_unparsed_statements;
          Alcotest.test_case "build filter" `Quick build_filter_drops_unbuilt;
        ] );
      ( "runs",
        [
          Alcotest.test_case "outputs written" `Quick catalogue_outputs_written;
          Alcotest.test_case "reproducible" `Quick runs_reproducible;
          Alcotest.test_case "members differ slightly" `Quick members_differ_slightly;
          Alcotest.test_case "fma signal" `Quick fma_effect_exceeds_ensemble_spread;
          Alcotest.test_case "fma selective disable" `Quick fma_disable_micro_mg_removes_most;
          Alcotest.test_case "prng swap" `Quick prng_swap_changes_radiation;
        ] );
      ( "injection",
        [
          Alcotest.test_case "wsub bug" `Quick injection_changes_behavior;
          Alcotest.test_case "missing pattern" `Quick injection_missing_pattern_rejected;
        ] );
      ( "ect-integration",
        [ Alcotest.test_case "pass and fail" `Slow ect_of_model_passes_and_fails ] );
      ( "outputs",
        [
          Alcotest.test_case "catalogue" `Quick catalogue_consistency;
          Alcotest.test_case "cam classification" `Quick cam_module_classification;
        ] );
    ]
